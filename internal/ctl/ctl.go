// Package ctl is the live control plane: it owns an autoscaled
// serving.NodeSession fleet and advances the deterministic stream clock
// — pausable, single-steppable, optionally paced against wall time at a
// configurable time-scale — while exposing an operator command API
// (list / get / cordon / drain / fail / scale / load / snapshot /
// report; see command.go for the full vocabulary).
//
// The design constraint everything here serves is determinism. The
// simulated fleet only ever moves on its virtual clock (cycles), never
// on wall time: wall pacing merely decides *when* the next virtual step
// is taken, not *what* it computes (drive.go holds the one sanctioned
// time.Sleep, behind a premalint ignore). Commands are serialized into
// the clock loop between ticks under one mutex, stamped with the
// virtual instant they executed at. The consequence is the property the
// tests lock in: the same command script at the same virtual timestamps
// replays byte-identically, and a scripted session is stat-identical to
// the equivalent declarative scenario run — the control plane is the
// scenario engine with a human (or an HTTP client) in the loop.
//
// Traffic follows the scenario executor's arrival discipline exactly:
// virtual time is divided into fixed segments, and entering a segment
// samples its Poisson arrival window at the current offered load with
// the session RNG (`load` changes apply from the next segment). A
// zero-load segment consumes no randomness, mirroring OfferRamp, which
// is what makes the RNG streams of a scripted session and a scenario
// file line up arrival for arrival.
package ctl

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/serving"
	"repro/internal/workload"
)

// Config parameterizes a control plane.
type Config struct {
	// Node is the fleet configuration the plane opens: initial NPUs,
	// routing, the per-NPU session (scheduler, horizon, warm-up) and an
	// optional autoscaler. The work ledger (TrackWork) is forced on so
	// failures can be injected at any point of the stream.
	Node serving.NodeConfig
	// Models restricts the generated request mix (defaults to the
	// serving suite's default).
	Models []string
	// Seed seeds the arrival process; 0 means the facade's fixed
	// default (0x5E55), keeping scripted runs comparable to scenarios.
	Seed uint64
	// Segment is the arrival-generation window (default 20ms): load
	// changes take effect at segment boundaries, exactly like a
	// scenario ramp whose segments are this long.
	Segment time.Duration
	// Step is the clock-advance granularity of paced and `step` mode
	// (default 1ms).
	Step time.Duration
	// TimeScale is how many virtual seconds elapse per wall second when
	// the plane paces itself (Pace, or a paced script). 0 disables wall
	// pacing entirely: the clock moves only under `step` or scripted
	// command timestamps — the mode CI runs, with no wall-clock
	// dependence at all.
	TimeScale float64
	// Load is the initial offered load per NPU-capacity (the scenario
	// `load` unit); 0 starts the plane idle until a `load` command.
	Load float64
	// Name labels the run's report (default "control-plane").
	Name string
}

// Plane is a live control plane over one node-session fleet. All
// methods are safe for concurrent use: commands, snapshots and the
// pacing loop serialize on one mutex, so every observer sees the fleet
// between virtual steps, never mid-step.
type Plane struct {
	mu  sync.Mutex
	cfg Config
	srv *serving.Server
	ns  *serving.NodeSession
	rng *rand.Rand

	now        int64 // virtual clock, cycles
	stepCycles int64
	load       float64
	segIdx     int // next arrival segment to generate

	// buffer holds generated-but-not-yet-arrived tasks; bufHead is the
	// consumed prefix.
	buffer  []*workload.Task
	bufHead int
	offered int

	paused bool
	quit   bool
	err    error

	commands []CommandRecord
	final    *RunReport

	estScratch []float64
}

// New validates the configuration and opens the control plane's fleet.
// The plane starts paused when TimeScale is 0 (manual stepping);
// otherwise it is ready for Pace or a script to advance it.
func New(srv *serving.Server, cfg Config) (*Plane, error) {
	if cfg.Segment == 0 {
		cfg.Segment = 20 * time.Millisecond
	}
	if cfg.Segment < 0 {
		return nil, fmt.Errorf("ctl: negative segment %v", cfg.Segment)
	}
	if cfg.Step == 0 {
		cfg.Step = time.Millisecond
	}
	if cfg.Step < 0 {
		return nil, fmt.Errorf("ctl: negative step %v", cfg.Step)
	}
	if cfg.TimeScale < 0 {
		return nil, fmt.Errorf("ctl: negative time-scale %v", cfg.TimeScale)
	}
	if cfg.Load < 0 {
		return nil, fmt.Errorf("ctl: negative offered load %v", cfg.Load)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x5E55
	}
	if cfg.Name == "" {
		cfg.Name = "control-plane"
	}
	step := srv.NPU().Cycles(cfg.Step)
	if step <= 0 {
		return nil, fmt.Errorf("ctl: step %v is under one cycle", cfg.Step)
	}
	if srv.NPU().Cycles(cfg.Segment) <= 0 {
		return nil, fmt.Errorf("ctl: segment %v is under one cycle", cfg.Segment)
	}
	node := cfg.Node
	node.TrackWork = true
	ns, err := srv.OpenNode(node)
	if err != nil {
		return nil, err
	}
	return &Plane{
		cfg:        cfg,
		srv:        srv,
		ns:         ns,
		rng:        workload.RNGFor(cfg.Seed, 0),
		stepCycles: step,
		load:       cfg.Load,
		paused:     cfg.TimeScale <= 0,
		estScratch: make([]float64, 0, 256),
	}, nil
}

// errClosed marks commands against a plane that has already quit.
var errClosed = errors.New("ctl: control plane closed")

func (p *Plane) cycles(d time.Duration) int64 { return p.srv.NPU().Cycles(d) }
func (p *Plane) millis(c int64) float64       { return p.srv.NPU().Millis(c) }

// segBoundary is the cycle segment idx starts at. Boundaries are
// computed through duration arithmetic — boundary(i) = Cycles(i *
// Segment) — because that is exactly how OfferRamp places segment
// offsets; computing i*Cycles(Segment) instead would drift by rounding
// and break arrival-for-arrival equivalence with scenario runs.
func (p *Plane) segBoundary(idx int) int64 {
	return p.cycles(time.Duration(idx) * p.cfg.Segment)
}

// generateSegment samples the next segment's Poisson arrival window at
// the current offered load into the buffer. Idle (zero-load) segments
// consume no randomness and an empty sampled window is not an error —
// both mirror OfferRamp, keeping the RNG stream scenario-identical.
func (p *Plane) generateSegment() error {
	idx := p.segIdx
	p.segIdx++
	if p.load <= 0 {
		return nil
	}
	tasks, err := p.srv.Generate(serving.Spec{
		Horizon:     p.cfg.Segment,
		Offset:      time.Duration(idx) * p.cfg.Segment,
		OfferedLoad: p.load,
		Models:      p.cfg.Models,
		BatchSizes:  []int{1},
	}, p.rng)
	if err != nil {
		if errors.Is(err, serving.ErrNoArrivals) {
			return nil
		}
		return fmt.Errorf("ctl: segment %d (load %v): %w", idx, p.load, err)
	}
	p.buffer = append(p.buffer, tasks...)
	return nil
}

// advanceClockTo moves the virtual clock forward to cycle `to`:
// generating every arrival segment the clock enters, submitting
// buffered arrivals strictly before `to` (the node session itself fires
// due chaos ops and autoscale ticks against each arrival, and the
// trailing AdvanceToCycle flushes the tail), and leaving the stream
// clock exactly at `to`. Called with the plane mutex held. Advancing to
// the present or the past is a no-op — the clock never rewinds.
func (p *Plane) advanceClockTo(to int64) error {
	if to <= p.now {
		return nil
	}
	for p.segBoundary(p.segIdx) < to {
		if err := p.generateSegment(); err != nil {
			return err
		}
	}
	for p.bufHead < len(p.buffer) && p.buffer[p.bufHead].Arrival < to {
		t := p.buffer[p.bufHead]
		p.buffer[p.bufHead] = nil
		p.bufHead++
		if err := p.ns.Submit(t); err != nil {
			return err
		}
		p.offered++
	}
	if p.bufHead == len(p.buffer) && p.bufHead > 0 {
		p.buffer, p.bufHead = p.buffer[:0], 0
	}
	if err := p.ns.AdvanceToCycle(to); err != nil {
		return err
	}
	p.now = to
	return nil
}

// finish advances to the final instant, seals the stream and builds the
// run's report. Called with the mutex held, once, from the quit path.
func (p *Plane) finish(at int64) error {
	if err := p.advanceClockTo(at); err != nil {
		return err
	}
	// advanceClockTo submits strictly-earlier arrivals only, but a
	// sampled window is inclusive of its end, so an arrival can land
	// exactly on the final instant. OfferRamp submits every generated
	// arrival; flush those too, so a sealed session counts arrivals
	// exactly like the equivalent scenario run.
	for p.bufHead < len(p.buffer) && p.buffer[p.bufHead].Arrival <= at {
		t := p.buffer[p.bufHead]
		p.buffer[p.bufHead] = nil
		p.bufHead++
		if err := p.ns.Submit(t); err != nil {
			return err
		}
		p.offered++
	}
	p.quit = true
	p.final = p.buildReport()
	return nil
}

// Done reports whether the plane has quit.
func (p *Plane) Done() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quit
}

// Err reports the error that stopped the plane, if any.
func (p *Plane) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// NowMS reports the virtual clock in milliseconds.
func (p *Plane) NowMS() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.millis(p.now)
}

// Close seals the plane and its fleet. Idempotent.
func (p *Plane) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.quit = true
	return p.ns.Close()
}
