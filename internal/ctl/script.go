package ctl

// script.go is the non-interactive driver: a command script pins every
// command to a virtual timestamp (`@<time> <command>`), which removes
// the one nondeterministic input an interactive session has — when the
// operator typed. Scripted sessions therefore replay byte-identically
// (transcript and report both) for a fixed seed and script, and a
// scripted chaos session is stat-identical to the equivalent scenario
// file: both are proven in ctl_test.go. At time-scale 0 a script runs
// as fast as the simulator computes, with no wall-clock dependence —
// the mode CI replays.

import (
	"fmt"
	"strings"
	"time"
)

// scriptCommand is one parsed script line.
type scriptCommand struct {
	at    int64  // virtual cycle
	label string // the original timestamp text, echoed in the transcript
	line  string // the command
}

// parseScript parses the `@<time> <command>` line format. '#' starts a
// comment, blank lines are skipped, and timestamps must be
// nondecreasing — the virtual clock never rewinds.
func (p *Plane) parseScript(src string) ([]scriptCommand, error) {
	var cmds []scriptCommand
	var last int64 = -1
	for n, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "@") {
			return nil, fmt.Errorf("ctl: script line %d: expected \"@<time> <command>\", got %q", n+1, line)
		}
		stamp, rest, ok := strings.Cut(line[1:], " ")
		rest = strings.TrimSpace(rest)
		if !ok || rest == "" {
			return nil, fmt.Errorf("ctl: script line %d: timestamp without a command", n+1)
		}
		d, err := time.ParseDuration(stamp)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("ctl: script line %d: bad timestamp %q", n+1, stamp)
		}
		at := p.cycles(d)
		if at < last {
			return nil, fmt.Errorf("ctl: script line %d: timestamp %s rewinds the clock", n+1, stamp)
		}
		last = at
		cmds = append(cmds, scriptCommand{at: at, label: stamp, line: rest})
	}
	if len(cmds) == 0 {
		return nil, fmt.Errorf("ctl: empty script")
	}
	return cmds, nil
}

// RunScript executes a command script to completion and returns the
// transcript. Each command runs at its virtual timestamp: the clock is
// advanced to just before the instant (so an operation scheduled there
// still fires ahead of any autoscale tick due at the same cycle,
// exactly like a scenario event), the command executes, and the stream
// catches up on the way to the next command. A script that does not end
// in `quit` is sealed at its last timestamp. With TimeScale > 0 the
// script paces itself against the wall clock; at 0 it runs flat out.
// The first command error aborts the script (and is returned alongside
// the transcript so far).
func (p *Plane) RunScript(src string) (string, error) {
	cmds, err := p.parseScript(src)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, c := range cmds {
		p.mu.Lock()
		if p.quit {
			p.mu.Unlock()
			return b.String(), errClosed
		}
		gap := c.at - p.now
		p.mu.Unlock()
		p.sleepVirtual(gap)

		p.mu.Lock()
		if pre := c.at - 1; pre > p.now {
			if err := p.advanceClockTo(pre); err != nil {
				p.err = err
				p.quit = true
				p.mu.Unlock()
				return b.String(), err
			}
		}
		out, err := p.execLocked(c.at, c.line)
		done := p.quit
		p.mu.Unlock()

		fmt.Fprintf(&b, "@%s $ %s\n", c.label, c.line)
		if err != nil {
			fmt.Fprintf(&b, "  error: %v\n", err)
			return b.String(), fmt.Errorf("ctl: script command %q at @%s: %w", c.line, c.label, err)
		}
		for _, line := range strings.Split(out, "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
		if done {
			return b.String(), nil
		}
	}
	// No explicit quit: seal at the last command's instant.
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.quit {
		if err := p.finish(cmds[len(cmds)-1].at); err != nil {
			p.err = err
			p.quit = true
			return b.String(), err
		}
	}
	return b.String(), nil
}
