package ctl

// telemetry.go is the plane's observability surface over the node's
// attached telemetry handle: the `trace` and `metrics` commands and the
// JSON exports behind the /trace and /metrics HTTP endpoints. All of it
// is read-only over state the node session already keeps on the virtual
// clock, so the renderings replay byte-identically with the stream.

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/telemetry"
)

// ErrNoTelemetry marks trace/metrics requests against a plane whose
// node has no telemetry attached (premactl -trace, or
// serving.NodeConfig.Trace when embedding).
var ErrNoTelemetry = errors.New("ctl: telemetry not attached (run premactl -trace)")

// TraceExport is the /trace JSON shape: the derived summary plus the
// full merged event stream.
type TraceExport struct {
	Summary telemetry.TraceSummary `json:"summary"`
	Events  []telemetry.Event      `json:"events"`
}

// TraceExport assembles the node's merged per-request trace and its
// summary. It errors with ErrNoTelemetry when no tracer is attached.
func (p *Plane) TraceExport() (*TraceExport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.traceExportLocked()
}

// traceExportLocked builds the trace export; the caller holds the mutex.
func (p *Plane) traceExportLocked() (*TraceExport, error) {
	tr := p.ns.Telemetry()
	if tr == nil || tr.Tracer == nil {
		return nil, ErrNoTelemetry
	}
	events, err := p.ns.TraceEvents()
	if err != nil {
		return nil, err
	}
	return &TraceExport{Summary: telemetry.Summarize(events, 5), Events: events}, nil
}

// MetricSamples answers the recorder's tick-metric series. It errors
// with ErrNoTelemetry when no recorder is attached.
func (p *Plane) MetricSamples() ([]telemetry.TickSample, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.metricSamplesLocked()
}

// metricSamplesLocked reads the recorder; the caller holds the mutex.
func (p *Plane) metricSamplesLocked() ([]telemetry.TickSample, error) {
	tr := p.ns.Telemetry()
	if tr == nil || tr.Recorder == nil {
		return nil, ErrNoTelemetry
	}
	return tr.Recorder.Samples(), nil
}

// renderTrace is the `trace` command: the summary plus the worst
// requests, as deterministic text.
func (p *Plane) renderTrace() (string, error) {
	exp, err := p.traceExportLocked()
	if err != nil {
		return "", err
	}
	s := exp.Summary
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events over %d requests (%d completed, %d re-routed, %d stretched)\n",
		s.Events, s.Requests, s.Completed, s.Reroutes, s.Stretched)
	if s.Completed > 0 {
		fmt.Fprintf(&b, "latency: mean %.2fms  max %.2fms  (queue %.2fms + service %.2fms + stretch %.2fms mean)\n",
			s.MeanLatencyMS, s.MaxLatencyMS, s.MeanQueueMS, s.MeanServiceMS, s.MeanStretchMS)
	}
	if len(s.Worst) > 0 {
		b.WriteString("worst requests:\n")
		for _, w := range s.Worst {
			fmt.Fprintf(&b, "  req%-5d npu%-3d %-9s %.2fms (queue %.2fms, service %.2fms",
				w.Req, w.NPU, tierLabel(w.Tier), w.LatencyMS, w.QueueMS, w.ServiceMS)
			if w.StretchMS > 0 {
				fmt.Fprintf(&b, ", stretch %.2fms", w.StretchMS)
			}
			if w.Reroutes > 0 {
				fmt.Fprintf(&b, ", %d re-routes", w.Reroutes)
			}
			b.WriteString(")\n")
		}
	}
	return strings.TrimRight(b.String(), "\n"), nil
}

// tierLabel pads the homogeneous case so traced homogeneous and tiered
// fleets line up the same columns.
func tierLabel(tier string) string {
	if tier == "" {
		return "-"
	}
	return tier
}

// renderMetrics is the `metrics` command: the most recent tick samples
// (at most 5), as deterministic text.
func (p *Plane) renderMetrics() (string, error) {
	samples, err := p.metricSamplesLocked()
	if err != nil {
		return "", err
	}
	if len(samples) == 0 {
		return "no tick samples yet (the recorder samples on the autoscale tick)", nil
	}
	total := len(samples)
	tail := samples
	if len(tail) > 5 {
		tail = tail[len(tail)-5:]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d tick samples; last %d:\n", total, len(tail))
	for _, s := range tail {
		fmt.Fprintf(&b, "  %9.2fms  fleet %-3d est-p95 %-8.2f window %-4d done %-4d reclaims %d\n",
			s.AtMS, s.Fleet, s.EstP95MS, s.Window, s.Completions, s.Reclaims)
		for _, g := range s.Tiers {
			fmt.Fprintf(&b, "             tier %-8s %d active  in-flight %-4d backlog %.2fms\n",
				g.Tier, g.Active, g.InFlight, g.BacklogMS)
		}
	}
	return strings.TrimRight(b.String(), "\n"), nil
}
