package ctl

// http_test.go exercises the HTTP mirror endpoint by endpoint: the
// error shapes (/cmd without a query, unknown verbs, unknown paths),
// the JSON contracts of /cmd, /snapshot and /report, and the telemetry
// endpoints in both states — 404 on a plane without a handle, live
// JSON on one attached with serving.NodeConfig.Trace.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serving"
	"repro/internal/telemetry"
)

// newTracedPlane opens newPlane's fleet with a telemetry handle
// attached, and advances far enough that the tracer holds events and
// the recorder holds autoscale-tick samples.
func newTracedPlane(t testing.TB) *Plane {
	t.Helper()
	p, err := New(newServer(t), Config{
		Node: serving.NodeConfig{
			NPUs:    2,
			Routing: cluster.LeastWork,
			Session: serving.SessionConfig{Policy: "PREMA", Preemptive: true},
			Autoscale: &serving.AutoscaleConfig{
				Scaler: "queue-depth", SLO: 8 * time.Millisecond,
				MinNPUs: 2, MaxNPUs: 4,
			},
			Trace: telemetry.New(),
		},
		Seed:    7,
		Segment: 25 * time.Millisecond,
		Load:    2,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

// get runs one request through the handler and returns the recorder.
func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
	return rr
}

func TestHandlerEndpoints(t *testing.T) {
	plain := newPlane(t)
	traced := newTracedPlane(t)
	for _, p := range []*Plane{plain, traced} {
		if _, err := p.Exec("step 60ms"); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	plainH, tracedH := plain.Handler(), traced.Handler()

	const jsonCT = "application/json; charset=utf-8"
	cases := []struct {
		name     string
		handler  http.Handler
		path     string
		status   int
		ct       string // "" skips the content-type check
		contains string
	}{
		{"index", plainH, "/", http.StatusOK, "text/plain; charset=utf-8", "/snapshot"},
		{"index lists telemetry", plainH, "/", http.StatusOK, "", "/metrics"},
		{"unknown path", plainH, "/nope", http.StatusNotFound, "", "404 page not found"},
		{"cmd missing query", plainH, "/cmd", http.StatusBadRequest, "", "missing command: /cmd?q=list"},
		{"cmd unknown verb", plainH, "/cmd?q=bogus", http.StatusUnprocessableEntity, jsonCT, "unknown command"},
		{"cmd list", plainH, "/cmd?q=list", http.StatusOK, jsonCT, "active"},
		{"snapshot", plainH, "/snapshot", http.StatusOK, jsonCT, `"fleet"`},
		{"report", plainH, "/report", http.StatusOK, jsonCT, `"source": "premactl"`},
		{"trace unattached", plainH, "/trace", http.StatusNotFound, "", "telemetry not attached"},
		{"metrics unattached", plainH, "/metrics", http.StatusNotFound, "", "telemetry not attached"},
		{"trace attached", tracedH, "/trace", http.StatusOK, jsonCT, `"summary"`},
		{"metrics attached", tracedH, "/metrics", http.StatusOK, jsonCT, `"est_p95_ms"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := get(t, tc.handler, tc.path)
			if rr.Code != tc.status {
				t.Errorf("GET %s: status %d, want %d\nbody: %s", tc.path, rr.Code, tc.status, rr.Body)
			}
			if tc.ct != "" {
				if got := rr.Header().Get("Content-Type"); got != tc.ct {
					t.Errorf("GET %s: content-type %q, want %q", tc.path, got, tc.ct)
				}
			}
			if !strings.Contains(rr.Body.String(), tc.contains) {
				t.Errorf("GET %s: body missing %q:\n%s", tc.path, tc.contains, rr.Body)
			}
		})
	}
}

// TestHandlerCmdJSON pins the /cmd response schema on both the success
// and the refusal path.
func TestHandlerCmdJSON(t *testing.T) {
	h := newPlane(t).Handler()

	var ok cmdResponse
	rr := get(t, h, "/cmd?q=time")
	if err := json.Unmarshal(rr.Body.Bytes(), &ok); err != nil {
		t.Fatalf("decode /cmd?q=time: %v", err)
	}
	if ok.Cmd != "time" || ok.Output == "" || ok.Err != "" {
		t.Errorf("unexpected success response: %+v", ok)
	}

	var refused cmdResponse
	rr = get(t, h, "/cmd?q=scale")
	if rr.Code != http.StatusUnprocessableEntity {
		t.Fatalf("refused command: status %d, want 422", rr.Code)
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &refused); err != nil {
		t.Fatalf("decode refused /cmd: %v", err)
	}
	if refused.Err == "" || refused.Output != "" {
		t.Errorf("unexpected refusal response: %+v", refused)
	}
}

// TestHandlerTelemetryJSON decodes the traced endpoints: the trace
// export must carry events with a consistent summary, and the metric
// series must hold per-NPU samples from the autoscale tick.
func TestHandlerTelemetryJSON(t *testing.T) {
	p := newTracedPlane(t)
	if _, err := p.Exec("step 60ms"); err != nil {
		t.Fatalf("step: %v", err)
	}
	h := p.Handler()

	var exp TraceExport
	if err := json.Unmarshal(get(t, h, "/trace").Body.Bytes(), &exp); err != nil {
		t.Fatalf("decode /trace: %v", err)
	}
	if len(exp.Events) == 0 || exp.Summary.Requests == 0 {
		t.Errorf("traced run exported no events: summary %+v", exp.Summary)
	}
	if exp.Summary.Events != len(exp.Events) {
		t.Errorf("summary counts %d events, export carries %d", exp.Summary.Events, len(exp.Events))
	}

	var samples []telemetry.TickSample
	if err := json.Unmarshal(get(t, h, "/metrics").Body.Bytes(), &samples); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	if len(samples) == 0 {
		t.Fatalf("traced autoscaled run recorded no tick samples")
	}
	last := samples[len(samples)-1]
	if last.Fleet == 0 || len(last.NPUs) != last.Fleet {
		t.Errorf("tick sample fleet/NPUs mismatch: %+v", last)
	}
}
