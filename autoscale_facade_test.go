package prema_test

// autoscale_facade_test.go exercises the public autoscaling surface:
// AutoscaleConfig validation at OpenNode, the ramp-driven scaling
// timeline, and a custom scaler registered through RegisterScaler
// participating exactly like a builtin.

import (
	"testing"
	"time"

	prema "repro"
)

var rampModels = []string{"CNN-AN", "CNN-GN", "CNN-MN", "RNN-SA"}

func openAutoscaled(t *testing.T, sys *prema.System, scaler string) *prema.NodeSession {
	t.Helper()
	ns, err := sys.OpenNode(prema.NodeSessionConfig{
		NPUs:      1,
		Routing:   prema.LeastWork,
		Scheduler: prema.Scheduler{Policy: prema.FCFS},
		Models:    rampModels,
		Horizon:   200 * time.Millisecond,
		Seed:      21,
		Autoscale: &prema.AutoscaleConfig{
			Scaler:  scaler,
			SLO:     6 * time.Millisecond,
			MinNPUs: 1,
			MaxNPUs: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ns
}

func TestNodeSessionAutoscaleTimeline(t *testing.T) {
	sys, err := prema.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	ns := openAutoscaled(t, sys, "queue-depth")
	defer ns.Close()
	if _, err := ns.OfferRamp([]float64{0.4, 1.5, 3.0, 1.5, 0.4}, 40*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st, err := ns.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.Scaling == nil {
		t.Fatal("autoscaled session reports no scaling timeline")
	}
	if st.Scaling.PeakNPUs <= 1 {
		t.Errorf("fleet never grew: %+v", st.Scaling.Events)
	}
	if st.Scaling.SLOLatencyMS != 6 {
		t.Errorf("SLO flattened to %.2fms, want 6", st.Scaling.SLOLatencyMS)
	}
	if len(st.Scaling.Events) == 0 || st.Scaling.Events[0].AtMS != 0 || st.Scaling.Events[0].NPUs != 1 {
		t.Errorf("timeline missing its initial anchor: %+v", st.Scaling.Events)
	}
	for i := 1; i < len(st.Scaling.Events); i++ {
		if st.Scaling.Events[i].AtMS < st.Scaling.Events[i-1].AtMS {
			t.Errorf("timeline out of order: %+v", st.Scaling.Events)
		}
	}
	if ns.NPUs() < st.Scaling.PeakNPUs {
		t.Errorf("NPUs() = %d below the observed peak %d (retired backends must stay visible)",
			ns.NPUs(), st.Scaling.PeakNPUs)
	}
	if st.Scaling.SLOViolationFrac < 0 || st.Scaling.SLOViolationFrac > 1 {
		t.Errorf("violation fraction %v outside [0,1]", st.Scaling.SLOViolationFrac)
	}
}

func TestAutoscaleConfigValidation(t *testing.T) {
	sys, err := prema.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	base := prema.NodeSessionConfig{
		NPUs:      1,
		Scheduler: prema.Scheduler{Policy: prema.FCFS},
	}
	cases := []struct {
		name string
		a    prema.AutoscaleConfig
	}{
		{"empty scaler", prema.AutoscaleConfig{SLO: time.Millisecond}},
		{"unknown scaler", prema.AutoscaleConfig{Scaler: "nope", SLO: time.Millisecond}},
		{"missing SLO", prema.AutoscaleConfig{Scaler: "static"}},
		{"inverted bounds", prema.AutoscaleConfig{Scaler: "static", SLO: time.Millisecond,
			MinNPUs: 4, MaxNPUs: 2}},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Autoscale = &tc.a
		if _, err := sys.OpenNode(cfg); err == nil {
			t.Errorf("%s: OpenNode accepted an invalid autoscale config", tc.name)
		}
		if tc.a.Validate() == nil && tc.name != "inverted bounds" {
			t.Errorf("%s: Validate accepted an invalid config", tc.name)
		}
	}
}

// rampScaler is a custom facade-registered scaler: it scales straight
// to the fleet maximum whenever anything is in flight (an aggressive
// burst policy no builtin implements).
type rampScaler struct{}

func (rampScaler) Decide(m prema.ScalerMetrics) prema.ScaleDelta {
	if m.InFlight > 0 && m.Active < m.Max {
		return prema.ScaleDelta(m.Max - m.Active)
	}
	return 0
}

func TestRegisterScalerRoundTrip(t *testing.T) {
	if err := prema.RegisterScaler("test-burst", func(prema.ScalerConfig) (prema.Scaler, error) {
		return rampScaler{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := prema.RegisterScaler("test-burst", func(prema.ScalerConfig) (prema.Scaler, error) {
		return rampScaler{}, nil
	}); err == nil {
		t.Error("duplicate scaler registration should error")
	}
	found := false
	for _, name := range prema.Scalers() {
		if name == "test-burst" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered scaler missing from Scalers(): %v", prema.Scalers())
	}

	sys, err := prema.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	ns := openAutoscaled(t, sys, "test-burst")
	defer ns.Close()
	if _, err := ns.OfferRamp([]float64{2.0, 2.0}, 40*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st, err := ns.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.Scaling == nil || st.Scaling.PeakNPUs != 4 {
		t.Errorf("custom burst scaler never reached the fleet maximum: %+v", st.Scaling)
	}
}
