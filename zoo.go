package prema

// zoo.go is the model-inspection surface: the benchmark zoo, per-model
// compilation, sequence-length prediction and program disassembly —
// everything cmd/premazoo and cmd/premapredict report, exposed through
// the facade.

import (
	"io"

	"repro/internal/dnn"
	"repro/internal/isa"
)

// AllModels returns every model in the benchmark zoo (the eight-model
// evaluation suite plus the auxiliary models).
func AllModels() []*Model { return dnn.All() }

// SuiteModels returns the labels of the paper's eight-model evaluation
// suite (Section III).
func SuiteModels() []string {
	suite := dnn.Suite()
	names := make([]string, len(suite))
	for i, m := range suite {
		names[i] = m.Name
	}
	return names
}

// Model looks one benchmark model up by label.
func (s *System) Model(name string) (*Model, error) { return dnn.ByName(name) }

// Compile lowers one concrete model instance to an NPU program. inLen
// and outLen are the unrolled sequence lengths for recurrent models
// (both 0 for CNNs; see PredictOutputLen for the regression estimate).
func (s *System) Compile(m *Model, batch, inLen, outLen int) (*Program, error) {
	return s.gen.Compiler().Compile(m, batch, inLen, outLen)
}

// PredictOutputLen runs the seq2seq length regression for a recurrent
// model: the output sequence length the Algorithm 1 predictor would
// assume for an input of inLen tokens.
func (s *System) PredictOutputLen(m *Model, inLen int) (int, error) {
	p, err := s.gen.Library().Predictor(m.SeqProfile)
	if err != nil {
		return 0, err
	}
	return p.Regression.Predict(inLen), nil
}

// Disassemble writes the ISA-level listing of a compiled program.
func Disassemble(p *Program, w io.Writer) error { return isa.Disassemble(p, w) }

// ElemBytes converts an element count to bytes at the zoo's element
// width.
func ElemBytes(elems int64) int64 { return dnn.Bytes(elems) }
