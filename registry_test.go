package prema

import (
	"sync"
	"testing"
	"time"
)

// lifo is a custom scheduling policy registered through the public
// surface only: latest arrival first, preempting whenever the candidate
// arrived after the runner. It exists to prove plugins are full citizens
// of the typed-configuration world.
type lifo struct{}

func (lifo) Name() string        { return "LIFO" }
func (lifo) UsesPredictor() bool { return false }
func (lifo) Pick(ready []*Task, current *Task, now int64) Decision {
	best := ready[0]
	for _, t := range ready[1:] {
		if t.Arrival > best.Arrival || (t.Arrival == best.Arrival && t.ID > best.ID) {
			best = t
		}
	}
	return Decision{Candidate: best, Preempt: current != nil && best.Arrival > current.Arrival}
}

// alwaysKill is a custom mechanism selector: every preemption discards
// the victim's progress.
type alwaysKill struct{}

func (alwaysKill) Name() string                                        { return "always-kill" }
func (alwaysKill) Select(current, candidate *Task) PreemptionMechanism { return Kill }

// doubled is a custom estimator that doubles the analytic prediction's
// proxy (a fixed constant per MAC); it only needs to be pure.
type doubled struct{}

func (doubled) Estimate(m *Model, batch, inLen int) (int64, error) {
	return 2_000_000, nil
}
func (doubled) CacheKey() string { return "doubled-v1" }

// registerPlugins performs the process-wide registrations shared by the
// tests in this file exactly once.
var registerPlugins = sync.OnceValue(func() error {
	if err := RegisterPolicy("LIFO", func(SchedConfig) (SchedulingPolicy, error) {
		return lifo{}, nil
	}); err != nil {
		return err
	}
	if err := RegisterSelector("always-kill", func() (MechanismSelector, error) {
		return alwaysKill{}, nil
	}); err != nil {
		return err
	}
	return RegisterEstimator("doubled", doubled{})
})

func registerOnce(t *testing.T) {
	t.Helper()
	if err := registerPlugins(); err != nil {
		t.Fatal(err)
	}
}

// TestCustomPolicyEndToEnd is the acceptance criterion: a policy
// registered through the facade runs through System.Simulate and
// System.Open without touching internal packages.
func TestCustomPolicyEndToEnd(t *testing.T) {
	registerOnce(t)
	sys := newSystem(t)

	cfg := Scheduler{Policy: "LIFO", Preemptive: true, Mechanism: "always-kill"}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("registered labels should validate: %v", err)
	}

	// Through Simulate.
	tasks, err := sys.Workload(WorkloadSpec{Tasks: 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Simulate(cfg, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 6 {
		t.Fatalf("custom policy completed %d of 6 tasks", len(res.Tasks))
	}
	if res.Metrics.ANTT < 1 {
		t.Errorf("ANTT %v below 1", res.Metrics.ANTT)
	}

	// Through a serving Session.
	sess, err := sys.Open(SessionConfig{Scheduler: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.OfferLoad(0.4, 150*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st, err := sess.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests == 0 || st.ThroughputPerSec <= 0 {
		t.Errorf("session under custom policy produced no throughput: %+v", st)
	}

	// Reusing simulated instances is rejected (they are single-use).
	if _, err := sys.Simulate(cfg, tasks); err == nil {
		t.Error("re-simulating consumed instances should error")
	}

	// Through a node simulation, on a fresh draw of the same mix.
	tasks, err = sys.Workload(WorkloadSpec{Tasks: 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	nres, err := sys.SimulateNode(Node{NPUs: 2, Routing: LeastWork,
		Local: cfg}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(nres.Tasks) != 6 {
		t.Errorf("node run completed %d of 6 tasks", len(nres.Tasks))
	}
}

// TestCustomEstimatorWorkload proves registered estimators resolve
// through WorkloadSpec.
func TestCustomEstimatorWorkload(t *testing.T) {
	registerOnce(t)
	sys := newSystem(t)
	tasks, err := sys.Workload(WorkloadSpec{Tasks: 3, Estimator: "doubled"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if task.EstimatedCycles != 2_000_000 {
			t.Errorf("estimate %d, want the custom constant", task.EstimatedCycles)
		}
	}
}

// TestRegistrationIsWriteOnce pins the duplicate-rejection contract.
func TestRegistrationIsWriteOnce(t *testing.T) {
	registerOnce(t)
	if err := RegisterPolicy("LIFO", func(SchedConfig) (SchedulingPolicy, error) {
		return lifo{}, nil
	}); err == nil {
		t.Error("duplicate policy registration should error")
	}
	if err := RegisterPolicy("", nil); err == nil {
		t.Error("empty registration should error")
	}
	if err := RegisterSelector("always-kill", func() (MechanismSelector, error) {
		return alwaysKill{}, nil
	}); err == nil {
		t.Error("duplicate selector registration should error")
	}
	if err := RegisterEstimator("doubled", doubled{}); err == nil {
		t.Error("duplicate estimator registration should error")
	}
	// The builtin labels are resolved before the registry, so accepting
	// them would silently shadow the registration.
	if err := RegisterEstimator("oracle", doubled{}); err == nil {
		t.Error("registering over the builtin oracle label should error")
	}
	if err := RegisterEstimator("analytic", doubled{}); err == nil {
		t.Error("registering over the builtin analytic label should error")
	}
}
