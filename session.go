package prema

// session.go is the streaming serving surface: System.Open returns a
// long-lived Session — the paper's Figure 1 TensorRT-Inference-Server
// setting as an endpoint. Callers Submit individual requests (or drive
// an open-loop Poisson arrival process with OfferLoad), let the dynamic
// batching window coalesce same-model CNN requests, and read incremental
// steady-state statistics at any point; Drain seals the stream and
// Close releases the session. Sustained-traffic scenarios are thereby
// first-class API citizens instead of being buried inside one
// experiment harness.

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/dnn"
	"repro/internal/serving"
	"repro/internal/workload"
)

// SessionConfig parameterizes a serving session.
type SessionConfig struct {
	// Scheduler is the NPU-local scheduling configuration.
	Scheduler Scheduler
	// Models restricts the request mix OfferLoad draws from (labels per
	// System.Models); empty serves the eight-model evaluation suite.
	// Submit is not restricted.
	Models []string
	// Window is the dynamic batching window: same-model CNN requests
	// arriving within a window are fused into one batched dispatch
	// (0 disables batching).
	Window time.Duration
	// MaxBatch caps the fused batch size (default 16).
	MaxBatch int
	// Horizon is the reference horizon for the warm-up cut; 0 derives
	// it from the latest submitted arrival.
	Horizon time.Duration
	// WarmupFraction of the horizon is excluded from latency
	// statistics (default 0.2).
	WarmupFraction float64
	// Seed drives the session's request sampling (RNN sequence lengths,
	// OfferLoad arrivals, random priorities) deterministically; 0
	// selects a fixed default.
	Seed uint64
}

// Request describes one inference request submitted to a Session.
type Request struct {
	// Model is the workload label (see System.Models).
	Model string
	// Batch is the request batch size (0 selects 1; batched sessions
	// coalesce batch-1 CNN requests).
	Batch int
	// Priority is the service level (0 selects Medium).
	Priority Priority
	// Arrival is the request's arrival time on the session clock.
	Arrival time.Duration
}

// SessionStats are the steady-state serving statistics of a session's
// stream so far. Statistics are per original request: fused batches are
// unbundled into their member requests.
type SessionStats struct {
	// Requests were submitted and completed; Measured excludes the
	// warm-up window; Dispatched counts NPU tasks after batching.
	Requests, Measured, Dispatched int
	// ThroughputPerSec is completed requests per second of makespan.
	ThroughputPerSec float64
	// Latency percentiles and mean, in milliseconds.
	MeanLatencyMS, P50LatencyMS, P95LatencyMS, P99LatencyMS float64
	// MeanNTT is the mean normalized turnaround time.
	MeanNTT float64
	// SLAViolations4x is the fraction of measured requests violating
	// 4x their isolated execution time (the paper's SLA notion).
	SLAViolations4x float64
	// MeanBatch is the average fused batch size across CNN dispatches.
	MeanBatch float64
}

// Session is an open serving endpoint over one System. Sessions are not
// safe for concurrent use.
type Session struct {
	sys    *System
	inner  *serving.Session
	rng    *rand.Rand
	models []string
	nextID int
}

// Open validates the configuration and opens a serving session.
func (s *System) Open(cfg SessionConfig) (*Session, error) {
	if err := cfg.Scheduler.Validate(); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5E55
	}
	srv := serving.NewServer(s.opt.NPU, s.opt.Sched, s.gen)
	inner, err := srv.Open(serving.SessionConfig{
		Policy:         string(cfg.Scheduler.Policy),
		Preemptive:     cfg.Scheduler.Preemptive,
		Selector:       string(cfg.Scheduler.mechanism()),
		Window:         cfg.Window,
		MaxBatch:       cfg.MaxBatch,
		Horizon:        cfg.Horizon,
		WarmupFraction: cfg.WarmupFraction,
	})
	if err != nil {
		return nil, err
	}
	for _, name := range cfg.Models {
		if _, err := dnn.ByName(name); err != nil {
			return nil, err
		}
	}
	return &Session{
		sys:    s,
		inner:  inner,
		rng:    workload.RNGFor(seed, 0),
		models: cfg.Models,
	}, nil
}

// Submit appends one request to the session's stream.
func (ss *Session) Submit(req Request) error {
	batch := req.Batch
	if batch <= 0 {
		batch = 1
	}
	prio := req.Priority
	if prio == 0 {
		prio = Medium
	}
	if req.Arrival < 0 {
		return fmt.Errorf("prema: negative arrival %v", req.Arrival)
	}
	inst, err := ss.sys.gen.InstanceByName(ss.nextID, req.Model, batch, prio,
		ss.sys.opt.NPU.Cycles(req.Arrival), ss.rng)
	if err != nil {
		return err
	}
	if err := ss.inner.Submit(inst); err != nil {
		return err
	}
	ss.nextID++
	return nil
}

// SubmitInstance appends an already-generated instance (e.g. from
// System.Workload or System.Instances) to the stream.
func (ss *Session) SubmitInstance(inst *Instance) error {
	if err := ss.inner.Submit(inst); err != nil {
		return err
	}
	ss.nextID++
	return nil
}

// OfferLoad drives the open-loop arrival process: Poisson arrivals at
// the given offered utilization (request rate x mean isolated service
// time; loads near 1 saturate the NPU) over the horizon, with models
// drawn from the evaluation suite. Requests arrive at batch size 1 —
// the Figure 1 serving model, where batching is the session's job (see
// SessionConfig.Window). It returns how many requests arrived.
func (ss *Session) OfferLoad(load float64, horizon time.Duration) (int, error) {
	n, err := ss.inner.Offer(serving.Spec{
		Horizon:        horizon,
		OfferedLoad:    load,
		Models:         ss.models,
		BatchSizes:     []int{1},
		WarmupFraction: 0, // warm-up is the session's, not the spec's
	}, ss.rng)
	if err != nil {
		return 0, err
	}
	ss.nextID += n
	return n, nil
}

// OfferClients drives a closed-loop client population: each of the
// clients keeps exactly one request in flight, releasing its first
// request after one exponential think sample (mean think) and each next
// request one think sample after the previous one completes — the
// interactive-user regime, sweeping concurrency instead of offered
// load. No request is released at or after the horizon, and closed
// loops require an unbatched session (Window 0). It returns how many
// requests were realized.
func (ss *Session) OfferClients(clients int, think, horizon time.Duration) (int, error) {
	n, err := ss.inner.OfferClients(serving.ClientSpec{
		Clients: clients,
		Think:   think,
		Horizon: horizon,
		Models:  ss.models,
	}, ss.rng)
	if err != nil {
		return 0, err
	}
	ss.nextID += n
	return n, nil
}

// Pending reports how many requests have been submitted so far.
func (ss *Session) Pending() int { return ss.inner.Pending() }

// Stats computes the steady-state statistics of everything submitted so
// far. Stats is incremental: repeated calls without new submissions
// answer from a memo instead of re-simulating.
func (ss *Session) Stats() (SessionStats, error) {
	st, err := ss.inner.Stats()
	if err != nil {
		return SessionStats{}, err
	}
	return flattenStats(st), nil
}

// Drain computes final statistics and seals the session against further
// submissions; Stats remains callable until Close.
func (ss *Session) Drain() (SessionStats, error) {
	st, err := ss.inner.Drain()
	if err != nil {
		return SessionStats{}, err
	}
	return flattenStats(st), nil
}

// Close seals the session. Close is idempotent.
func (ss *Session) Close() error { return ss.inner.Close() }

func flattenStats(st serving.BatchStats) SessionStats {
	return SessionStats{
		Requests:         st.Requests,
		Measured:         st.Measured,
		Dispatched:       st.Dispatched,
		ThroughputPerSec: st.ThroughputPerSec,
		MeanLatencyMS:    st.MeanLatencyMS,
		P50LatencyMS:     st.P50LatencyMS,
		P95LatencyMS:     st.P95LatencyMS,
		P99LatencyMS:     st.P99LatencyMS,
		MeanNTT:          st.MeanNTT,
		SLAViolations4x:  st.SLAViolations4x,
		MeanBatch:        st.MeanBatch,
	}
}
