package prema

// config.go is the typed configuration surface: scheduling policies,
// preemption-mechanism configurations and cluster routing policies are
// identified by dedicated types with parse helpers and Validate methods,
// so configuration mistakes — an unknown label, a mechanism on a
// non-preemptive run — fail loudly at the API boundary instead of being
// silently ignored or surfacing deep inside the simulator.

import (
	"fmt"
	"time"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/sched"
	"repro/internal/serving"
)

// Policy identifies a scheduling policy. The paper's six policies are
// predeclared; RegisterPolicy adds custom ones, which parse and validate
// through the same registry.
type Policy string

// The paper's evaluated policies (Section VI).
const (
	// FCFS is the non-preemptive baseline of TensorRT Inference Server.
	FCFS Policy = "FCFS"
	// RRB rotates round-robin among the co-located tasks.
	RRB Policy = "RRB"
	// HPF runs the highest user priority first.
	HPF Policy = "HPF"
	// TOKEN uses Algorithm 2's candidate group with FCFS selection.
	TOKEN Policy = "TOKEN"
	// SJF runs the shortest estimated job first.
	SJF Policy = "SJF"
	// PREMA is the paper's token-based predictive scheduler.
	PREMA Policy = "PREMA"
)

// String returns the evaluation label.
func (p Policy) String() string { return string(p) }

// Validate reports whether the policy is registered.
func (p Policy) Validate() error {
	if p == "" {
		return fmt.Errorf("prema: empty policy (known: %v)", Policies())
	}
	if !sched.HasPolicy(string(p)) {
		return fmt.Errorf("prema: unknown policy %q (known: %v)", string(p), Policies())
	}
	return nil
}

// ParsePolicy validates a policy label (flag values, config files).
func ParsePolicy(s string) (Policy, error) {
	p := Policy(s)
	if err := p.Validate(); err != nil {
		return "", err
	}
	return p, nil
}

// Mechanism identifies a preemption-mechanism configuration: how a
// policy-recommended preemption is serviced. The paper's configurations
// are predeclared; RegisterSelector adds custom ones.
type Mechanism string

// The paper's mechanism configurations (Figures 12 and 15).
const (
	// StaticCheckpoint always checkpoints the preempted context.
	StaticCheckpoint Mechanism = "static-checkpoint"
	// StaticKill always discards the preempted task's progress.
	StaticKill Mechanism = "static-kill"
	// StaticKillLayer kills but resumes from the last layer boundary.
	StaticKillLayer Mechanism = "static-kill-layer"
	// StaticDrain always lets the running task finish.
	StaticDrain Mechanism = "static-drain"
	// Dynamic is Algorithm 3: DRAIN when the runner is nearly done,
	// CHECKPOINT otherwise.
	Dynamic Mechanism = "dynamic"
	// DynamicKill is Algorithm 3 with KILL as the saving mechanism.
	DynamicKill Mechanism = "dynamic-kill"
	// DynamicKillLayer is Algorithm 3 with layer-boundary KILL.
	DynamicKillLayer Mechanism = "dynamic-kill-layer"
)

// String returns the configuration label.
func (m Mechanism) String() string { return string(m) }

// Validate reports whether the mechanism configuration is registered.
// The empty mechanism is valid only as "default" inside a preemptive
// Scheduler (it resolves to Dynamic).
func (m Mechanism) Validate() error {
	if m == "" {
		return nil
	}
	if !sched.HasSelector(string(m)) {
		return fmt.Errorf("prema: unknown preemption mechanism %q (known: %v)",
			string(m), Mechanisms())
	}
	return nil
}

// ParseMechanism validates a mechanism label.
func ParseMechanism(s string) (Mechanism, error) {
	if s == "" {
		return "", fmt.Errorf("prema: empty preemption mechanism (known: %v)", Mechanisms())
	}
	m := Mechanism(s)
	if err := m.Validate(); err != nil {
		return "", err
	}
	return m, nil
}

// Routing identifies a cluster routing policy (the Section II-C
// deployment model's router).
type Routing string

// Cluster routing policies.
const (
	// RoundRobin cycles through the NPUs in dispatch order.
	RoundRobin Routing = "round-robin"
	// LeastQueued routes to the NPU with the fewest undrained requests.
	LeastQueued Routing = "least-queued"
	// LeastWork routes to the NPU with the least estimated backlog —
	// the predictive router built on Algorithm 1's estimates.
	LeastWork Routing = "least-work"
)

// String returns the routing label.
func (r Routing) String() string { return string(r) }

// Validate reports whether the routing policy exists; the empty value is
// valid and defaults to round-robin.
func (r Routing) Validate() error {
	_, err := r.toCluster()
	return err
}

// ParseRouting validates a routing label.
func ParseRouting(s string) (Routing, error) {
	r := Routing(s)
	if _, err := r.toCluster(); err != nil {
		return "", err
	}
	return r, nil
}

// Routings lists the cluster routing policies.
func Routings() []Routing {
	return []Routing{RoundRobin, LeastQueued, LeastWork}
}

// toCluster maps the identifier onto the internal routing policy.
func (r Routing) toCluster() (cluster.RoutingPolicy, error) {
	switch r {
	case "", RoundRobin:
		return cluster.RoundRobin, nil
	case LeastQueued:
		return cluster.LeastQueued, nil
	case LeastWork:
		return cluster.LeastWork, nil
	default:
		return 0, fmt.Errorf("prema: unknown routing policy %q (known: [%s %s %s])",
			string(r), RoundRobin, LeastQueued, LeastWork)
	}
}

// Scheduler selects a scheduling configuration.
type Scheduler struct {
	// Policy is the scheduling policy.
	Policy Policy
	// Preemptive enables the preemptible-NPU path.
	Preemptive bool
	// Mechanism selects how preemptions are serviced on preemptive
	// runs; empty defaults to Dynamic (Algorithm 3). Setting a
	// mechanism on a non-preemptive configuration is a validation
	// error — it would otherwise be silently ignored.
	Mechanism Mechanism
}

// Validate checks the configuration against the registries and the
// preemption invariant.
func (s Scheduler) Validate() error {
	if err := s.Policy.Validate(); err != nil {
		return err
	}
	if !s.Preemptive && s.Mechanism != "" {
		return fmt.Errorf("prema: mechanism %q set on a non-preemptive scheduler (set Preemptive or drop the mechanism)",
			s.Mechanism)
	}
	return s.Mechanism.Validate()
}

// mechanism resolves the effective mechanism label for the simulator.
func (s Scheduler) mechanism() Mechanism {
	if s.Preemptive && s.Mechanism == "" {
		return Dynamic
	}
	return s.Mechanism
}

// AutoscaleConfig attaches an SLO-driven scaling policy to a node
// session (NodeSessionConfig.Autoscale): the scaler watches the
// router's fluid per-NPU load on a periodic tick and grows or shrinks
// the backend fleet between MinNPUs and MaxNPUs — the
// Kubernetes-autoscaler analogue of the Section II-C router.
type AutoscaleConfig struct {
	// Scaler is the scaling-policy label: "static" (no-op baseline),
	// "target-latency" (PI controller against the P95 SLO),
	// "queue-depth" (thresholds with hysteresis and cooldown), or a
	// custom policy added with RegisterScaler. Empty is a validation
	// error — attaching an autoscaler without picking a policy would
	// otherwise be silently inert.
	Scaler string
	// SLO is the P95 latency target the fleet is scaled against; the
	// scaling statistics also report the fraction of requests exceeding
	// it.
	SLO time.Duration
	// MinNPUs and MaxNPUs bound the fleet (defaults 1 and max(8, the
	// session's initial NPUs)). The initial fleet must lie inside the
	// bounds.
	MinNPUs, MaxNPUs int
	// Tick is the scaler evaluation period (default 2ms).
	Tick time.Duration
}

// Validate checks the scaler label and the SLO; the fleet bounds are
// checked against the initial fleet size when the node session opens.
func (a AutoscaleConfig) Validate() error {
	if a.Scaler == "" {
		return fmt.Errorf("prema: no scaler selected (known: %v)", Scalers())
	}
	if !autoscale.Has(a.Scaler) {
		return fmt.Errorf("prema: unknown scaler %q (known: %v)", a.Scaler, Scalers())
	}
	if a.SLO <= 0 {
		return fmt.Errorf("prema: autoscaling requires a positive latency SLO, got %v", a.SLO)
	}
	return nil
}

// toServing maps the facade configuration onto the serving substrate.
func (a AutoscaleConfig) toServing() *serving.AutoscaleConfig {
	return &serving.AutoscaleConfig{
		Scaler:  a.Scaler,
		SLO:     a.SLO,
		MinNPUs: a.MinNPUs,
		MaxNPUs: a.MaxNPUs,
		Tick:    a.Tick,
	}
}

// Node configures a multi-NPU system node (the Section II-C deployment
// model, implemented by the beyond-paper cluster extension).
type Node struct {
	// NPUs is the accelerator count (>= 1).
	NPUs int
	// Routing selects the router; empty defaults to RoundRobin.
	Routing Routing
	// Local is the per-NPU scheduler configuration.
	Local Scheduler
	// Parallel bounds how many per-NPU simulations run concurrently
	// (0 = GOMAXPROCS, 1 = sequential; results are identical).
	Parallel int
}

// Validate checks the node shape, routing and local scheduler.
func (n Node) Validate() error {
	if n.NPUs <= 0 {
		return fmt.Errorf("prema: non-positive NPU count %d", n.NPUs)
	}
	if err := n.Routing.Validate(); err != nil {
		return err
	}
	return n.Local.Validate()
}
