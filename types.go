package prema

// types.go re-exports the internal substrate types the public API
// surfaces, as type aliases. External callers import only this package:
// the aliases make every value the facade returns — tasks, programs,
// timelines, configurations — fully usable (fields and methods) without
// reaching into internal packages, which is what lets cmd/ and examples/
// build on the facade alone.

import (
	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/dnn"
	"repro/internal/metrics"
	"repro/internal/npu"
	"repro/internal/preempt"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

type (
	// NPUConfig is the accelerator configuration (Table I).
	NPUConfig = npu.Config
	// SchedConfig is the scheduler configuration (Table II).
	SchedConfig = sched.Config
	// Task is one inference request as the scheduler tracks it — an
	// inference-task context-table entry (Figure 4). Results expose
	// completed Tasks; custom scheduling policies receive them.
	Task = sched.Task
	// Instance is a generated, compiled task instance: a Task plus its
	// provenance (model, sampled sequence lengths, compiled program).
	Instance = workload.Task
	// Priority is a user-defined service priority level.
	Priority = sched.Priority
	// SchedulingPolicy is the decision interface custom policies
	// implement (see RegisterPolicy).
	SchedulingPolicy = sched.Policy
	// Decision is a policy's recommendation at one scheduler wake-up.
	Decision = sched.Decision
	// MechanismSelector chooses which preemption mechanism services a
	// policy-recommended preemption (see RegisterSelector).
	MechanismSelector = sched.MechanismSelector
	// PreemptionMechanism identifies a preemption mechanism
	// (CHECKPOINT, KILL, KILL-layer, DRAIN).
	PreemptionMechanism = preempt.Mechanism
	// PreemptionEvent is one serviced preemption with its cost
	// breakdown.
	PreemptionEvent = sim.PreemptionEvent
	// Estimator predicts a model instance's execution time (see
	// RegisterEstimator).
	Estimator = workload.Estimator
	// Model is one benchmark DNN of the zoo.
	Model = dnn.Model
	// Program is a compiled NPU program.
	Program = npu.Program
	// Timeline records NPU occupancy spans for rendering.
	Timeline = trace.Timeline
	// Metrics are the Equation 1-2 figures of merit of one run.
	Metrics = metrics.Run
	// NPUStats summarizes one accelerator's share of a node run.
	NPUStats = cluster.NPUStats
	// Scaler is the autoscaling-policy decision interface custom
	// scalers implement (see RegisterScaler).
	Scaler = autoscale.Policy
	// ScalerConfig parameterizes scaler construction (the SLO in
	// milliseconds).
	ScalerConfig = autoscale.Config
	// ScalerMetrics is the per-tick load snapshot a Scaler observes.
	ScalerMetrics = autoscale.Metrics
	// ScaleDelta is a scaler's decision: the signed change in active
	// backend count it wants.
	ScaleDelta = autoscale.Delta
)

// Priority levels (Table II assigns 1/3/9 scheduling tokens).
const (
	Low    = sched.Low
	Medium = sched.Medium
	High   = sched.High
)

// Preemption mechanisms (Section IV).
const (
	Checkpoint = preempt.Checkpoint
	Kill       = preempt.Kill
	KillLayer  = preempt.KillLayer
	Drain      = preempt.Drain
)

// DefaultNPUConfig returns the paper's Table I accelerator
// configuration.
func DefaultNPUConfig() NPUConfig { return npu.DefaultConfig() }

// DefaultSchedConfig returns the paper's Table II scheduler
// configuration.
func DefaultSchedConfig() SchedConfig { return sched.DefaultConfig() }
