// Package prema is the public facade of the PREMA reproduction: a
// preemptible-NPU multi-tenant inference simulator with the predictive
// token-based scheduler of Choi & Rhu, "PREMA: A Predictive Multi-task
// Scheduling Algorithm For Preemptible Neural Processing Units"
// (HPCA 2020).
//
// The facade wires the internal substrates together behind a small API:
//
//	sys, _ := prema.NewSystem(prema.Defaults())
//	tasks, _ := sys.Workload(prema.WorkloadSpec{Tasks: 8}, 1)
//	res, _ := sys.Simulate(prema.Scheduler{Policy: "PREMA", Preemptive: true,
//	        Mechanism: "dynamic"}, tasks)
//	fmt.Println(res.Metrics.ANTT, res.Metrics.STP)
//
// Lower-level control (custom models, predictors, preemption mechanisms,
// experiment harnesses) lives in the internal packages; the cmd/ tools and
// examples/ directory demonstrate the intended usage patterns.
package prema

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/dnn"
	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options configures a System.
type Options struct {
	// NPU is the accelerator configuration (Table I of the paper).
	NPU npu.Config
	// Sched is the scheduler configuration (Table II).
	Sched sched.Config
	// ProfileSeed seeds the seq2seq length-characterization corpora.
	ProfileSeed uint64
}

// Defaults returns the paper's configuration.
func Defaults() Options {
	return Options{
		NPU:         npu.DefaultConfig(),
		Sched:       sched.DefaultConfig(),
		ProfileSeed: 0xA11CE,
	}
}

// System is a ready-to-use simulation environment: one NPU configuration,
// a compiled-program cache, the benchmark model zoo, and the sequence-
// length profile library.
type System struct {
	opt Options
	gen *workload.Generator
}

// NewSystem builds a System.
func NewSystem(opt Options) (*System, error) {
	if err := opt.NPU.Validate(); err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(opt.NPU, opt.ProfileSeed)
	if err != nil {
		return nil, err
	}
	return &System{opt: opt, gen: gen}, nil
}

// NPU returns the accelerator configuration.
func (s *System) NPU() npu.Config { return s.opt.NPU }

// Models returns the benchmark model zoo labels.
func (s *System) Models() []string { return dnn.Names() }

// WorkloadSpec mirrors workload.Spec for the facade.
type WorkloadSpec struct {
	// Tasks is the number of co-scheduled inference requests.
	Tasks int
	// Models restricts the model pool by label; empty selects the
	// paper's eight-model suite.
	Models []string
	// BatchSizes restricts the batch pool; empty selects {1,4,16}.
	BatchSizes []int
	// ArrivalWindow is the dispatch window (default 20ms).
	ArrivalWindow time.Duration
	// Oracle feeds exact execution times to the scheduler instead of
	// the Algorithm 1 predictor.
	Oracle bool
}

// Workload draws one multi-tasked workload; run seeds the randomness so
// repeated calls with the same run compare schedulers on identical mixes.
func (s *System) Workload(spec WorkloadSpec, run int) ([]*workload.Task, error) {
	wspec := workload.Spec{
		Tasks:         spec.Tasks,
		BatchSizes:    spec.BatchSizes,
		ArrivalWindow: spec.ArrivalWindow,
	}
	for _, name := range spec.Models {
		m, err := dnn.ByName(name)
		if err != nil {
			return nil, err
		}
		wspec.Models = append(wspec.Models, m)
	}
	if spec.Oracle {
		wspec.Estimator = workload.Oracle()
	}
	rng := workload.RNGFor(0xBEEF, run)
	return s.gen.Generate(wspec, rng)
}

// Scheduler selects a scheduling configuration by label.
type Scheduler struct {
	// Policy is one of FCFS, RRB, HPF, TOKEN, SJF, PREMA.
	Policy string
	// Preemptive enables the preemptible-NPU path.
	Preemptive bool
	// Mechanism selects the preemption-mechanism configuration for
	// preemptive runs: "static-checkpoint", "static-kill",
	// "static-drain", "dynamic" (Algorithm 3), or "dynamic-kill".
	Mechanism string
}

// Result is the outcome of one simulated multi-tenant run.
type Result struct {
	// Metrics are the Equation 1-2 figures of merit.
	Metrics metrics.Run
	// Tasks are the completed scheduler entries.
	Tasks []*sched.Task
	// Preemptions are the serviced preemption events.
	Preemptions []sim.PreemptionEvent
	// MakespanCycles is the completion time of the last task.
	MakespanCycles int64
	// Timeline reconstructs NPU occupancy for rendering.
	Timeline *trace.Timeline
}

// Simulate runs one workload under the given scheduler configuration.
func (s *System) Simulate(cfg Scheduler, tasks []*workload.Task) (*Result, error) {
	policy, err := sched.ByName(cfg.Policy, s.opt.Sched)
	if err != nil {
		return nil, err
	}
	var selector sched.MechanismSelector
	if cfg.Preemptive {
		mech := cfg.Mechanism
		if mech == "" {
			mech = "dynamic"
		}
		selector, err = sched.SelectorByName(mech)
		if err != nil {
			return nil, err
		}
	}
	simulator, err := sim.New(sim.Options{
		NPU: s.opt.NPU, Sched: s.opt.Sched,
		Policy: policy, Preemptive: cfg.Preemptive, Selector: selector,
	}, workload.SchedTasks(tasks))
	if err != nil {
		return nil, err
	}
	res, err := simulator.Run()
	if err != nil {
		return nil, err
	}
	m, err := metrics.FromTasks(res.Tasks)
	if err != nil {
		return nil, err
	}
	return &Result{
		Metrics:        m,
		Tasks:          res.Tasks,
		Preemptions:    res.Preemptions,
		MakespanCycles: res.Cycles,
		Timeline:       res.Timeline,
	}, nil
}

// SLAViolationRate reports the fraction of tasks violating an SLA target
// expressed as a multiple of each task's isolated execution time.
func (r *Result) SLAViolationRate(target float64) float64 {
	return metrics.SLAViolationRate(r.Tasks, target)
}

// Node configures a multi-NPU system node (the paper's Section II-C
// deployment model, implemented as the beyond-paper extension in
// internal/cluster).
type Node struct {
	// NPUs is the accelerator count (>= 1).
	NPUs int
	// Routing selects the router: "round-robin", "least-queued", or
	// "least-work" (predictive, reusing the Algorithm 1 estimates).
	Routing string
	// Local is the per-NPU scheduler configuration.
	Local Scheduler
}

// NodeResult aggregates a cluster simulation.
type NodeResult struct {
	// Metrics span all tasks on all NPUs.
	Metrics metrics.Run
	// Tasks pools the completed scheduler entries.
	Tasks []*sched.Task
	// PerNPU summarizes each accelerator's share.
	PerNPU []cluster.NPUStats
	// Preemptions counts serviced preemptions clusterwide.
	Preemptions int
}

// SimulateNode routes the workload across the node's NPUs and simulates
// each accelerator under its local scheduler.
func (s *System) SimulateNode(node Node, tasks []*workload.Task) (*NodeResult, error) {
	var routing cluster.RoutingPolicy
	switch node.Routing {
	case "", "round-robin":
		routing = cluster.RoundRobin
	case "least-queued":
		routing = cluster.LeastQueued
	case "least-work":
		routing = cluster.LeastWork
	default:
		return nil, fmt.Errorf("prema: unknown routing policy %q", node.Routing)
	}
	res, err := cluster.Run(cluster.Options{
		NPUs: node.NPUs, Routing: routing,
		NPU: s.opt.NPU, Sched: s.opt.Sched,
		LocalPolicy: node.Local.Policy,
		Preemptive:  node.Local.Preemptive,
		Selector:    node.Local.Mechanism,
	}, tasks)
	if err != nil {
		return nil, err
	}
	return &NodeResult{
		Metrics:     res.Metrics,
		Tasks:       res.Tasks,
		PerNPU:      res.PerNPU,
		Preemptions: res.Preemptions,
	}, nil
}

// Experiments lists the registered paper experiments.
func Experiments() []string { return exp.IDs() }

// RunExperiment regenerates one paper figure/table by ID and returns the
// rendered tables.
func RunExperiment(id string) ([]string, error) {
	e, err := exp.ByID(id)
	if err != nil {
		return nil, err
	}
	suite, err := exp.NewSuite()
	if err != nil {
		return nil, err
	}
	tables, err := e.Run(suite)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(tables))
	for i, t := range tables {
		out[i] = t.String()
	}
	return out, nil
}

// Version identifies the reproduction release.
const Version = "1.0.0"

var _ = fmt.Sprintf // keep fmt in the import set for doc examples
