// Package prema is the public facade of the PREMA reproduction: a
// preemptible-NPU multi-tenant inference simulator with the predictive
// token-based scheduler of Choi & Rhu, "PREMA: A Predictive Multi-task
// Scheduling Algorithm For Preemptible Neural Processing Units"
// (HPCA 2020).
//
// The API is organized around four pillars:
//
// Typed configuration. Scheduling policies, preemption mechanisms and
// routing policies are typed identifiers with parse helpers and eager
// validation; a System is built with functional options:
//
//	sys, _ := prema.NewSystem()
//	tasks, _ := sys.Workload(prema.WorkloadSpec{Tasks: 8}, 1)
//	res, _ := sys.Simulate(prema.Scheduler{
//	        Policy: prema.PREMA, Preemptive: true, Mechanism: prema.Dynamic,
//	}, tasks)
//	fmt.Println(res.Metrics.ANTT, res.Metrics.STP)
//
// Pluggable registries. RegisterPolicy, RegisterSelector and
// RegisterEstimator add custom scheduling policies, preemption-mechanism
// selectors and execution-time estimators that participate everywhere a
// builtin does — the paper's own policies are pre-registered through the
// same path.
//
// Streaming serving. System.Open returns a Session: an open-loop,
// dynamically batching serving endpoint — the paper's Figure 1 TensorRT
// Inference Server setting — that accepts a sustained request stream and
// answers incremental latency/throughput/SLA statistics. System.OpenNode
// lifts it to a multi-NPU node (the Section II-C deployment model): a
// routing policy streams requests into per-NPU sessions with their own
// local schedulers, reporting per-NPU and aggregate statistics. Both
// surfaces also serve closed-loop client populations (OfferClients),
// sweeping concurrency instead of offered load.
//
// Experiment suite. NewSuite shares one simulation-result cache (and
// optionally an on-disk cache) across every paper experiment run through
// Suite.Run.
//
// The cmd/ tools and examples/ directory are built exclusively on this
// facade and demonstrate the intended usage patterns.
package prema

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/dnn"
	"repro/internal/metrics"
	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options configures a System; construct it through NewSystem's
// functional options.
type Options struct {
	// NPU is the accelerator configuration (Table I of the paper).
	NPU NPUConfig
	// Sched is the scheduler configuration (Table II).
	Sched SchedConfig
	// ProfileSeed seeds the seq2seq length-characterization corpora.
	ProfileSeed uint64
}

// Option mutates the System configuration at construction.
type Option func(*Options)

// WithNPU overrides the accelerator configuration.
func WithNPU(cfg NPUConfig) Option { return func(o *Options) { o.NPU = cfg } }

// WithSchedConfig overrides the scheduler configuration.
func WithSchedConfig(cfg SchedConfig) Option { return func(o *Options) { o.Sched = cfg } }

// WithQuantum overrides just the scheduling-period time quota.
func WithQuantum(q time.Duration) Option { return func(o *Options) { o.Sched.Quantum = q } }

// WithProfileSeed overrides the sequence-length profile seed.
func WithProfileSeed(seed uint64) Option { return func(o *Options) { o.ProfileSeed = seed } }

// defaults returns the paper's configuration.
func defaults() Options {
	return Options{
		NPU:         npu.DefaultConfig(),
		Sched:       sched.DefaultConfig(),
		ProfileSeed: 0xA11CE,
	}
}

// System is a ready-to-use simulation environment: one NPU
// configuration, a compiled-program cache, the benchmark model zoo, and
// the sequence-length profile library. A System is safe for concurrent
// use.
type System struct {
	opt Options
	gen *workload.Generator
}

// NewSystem builds a System from the paper's defaults plus the given
// options.
func NewSystem(opts ...Option) (*System, error) {
	opt := defaults()
	for _, apply := range opts {
		apply(&opt)
	}
	if err := opt.NPU.Validate(); err != nil {
		return nil, err
	}
	if opt.Sched.Quantum <= 0 {
		return nil, fmt.Errorf("prema: non-positive scheduling quantum %v", opt.Sched.Quantum)
	}
	gen, err := workload.NewGenerator(opt.NPU, opt.ProfileSeed)
	if err != nil {
		return nil, err
	}
	return &System{opt: opt, gen: gen}, nil
}

// NPU returns the accelerator configuration.
func (s *System) NPU() NPUConfig { return s.opt.NPU }

// SchedConfig returns the scheduler configuration.
func (s *System) SchedConfig() SchedConfig { return s.opt.Sched }

// Models returns the benchmark model zoo labels (the eight-model suite
// plus the auxiliary models).
func (s *System) Models() []string { return dnn.Names() }

// WorkloadSpec parameterizes workload generation (the Section III
// methodology).
type WorkloadSpec struct {
	// Tasks is the number of co-scheduled inference requests.
	Tasks int
	// Models restricts the model pool by label; empty selects the
	// paper's eight-model suite.
	Models []string
	// BatchSizes restricts the batch pool; empty selects {1,4,16}.
	BatchSizes []int
	// ArrivalWindow is the dispatch window (default 20ms).
	ArrivalWindow time.Duration
	// Priority pins every task to one level when non-zero; zero draws
	// priorities uniformly at random.
	Priority Priority
	// Estimator selects the execution-time estimator by label: empty
	// or "analytic" is the Algorithm 1 model, "oracle" feeds exact
	// execution times, and RegisterEstimator adds custom labels.
	Estimator string
}

// Workload draws one multi-tasked workload; run seeds the randomness so
// repeated calls with the same run compare schedulers on identical
// mixes.
func (s *System) Workload(spec WorkloadSpec, run int) ([]*Instance, error) {
	est, err := workload.EstimatorByName(spec.Estimator)
	if err != nil {
		return nil, err
	}
	wspec := workload.Spec{
		Tasks:         spec.Tasks,
		BatchSizes:    spec.BatchSizes,
		ArrivalWindow: spec.ArrivalWindow,
		FixedPriority: spec.Priority,
		Estimator:     est,
	}
	for _, name := range spec.Models {
		m, err := dnn.ByName(name)
		if err != nil {
			return nil, err
		}
		wspec.Models = append(wspec.Models, m)
	}
	rng := workload.RNGFor(0xBEEF, run)
	return s.gen.Generate(wspec, rng)
}

// TaskSpec describes one hand-built task instance for scenario
// construction (e.g. the Figure 2 two-task intuition).
type TaskSpec struct {
	// Model is the workload label (see Models).
	Model string
	// Batch is the inference batch size (0 selects 1).
	Batch int
	// Priority is the service level (0 selects Medium).
	Priority Priority
	// Arrival is the dispatch time.
	Arrival time.Duration
}

// Instances compiles concrete task instances from explicit specs, IDs
// assigned in order. run seeds the RNN sequence-length sampling so
// repeated calls with the same run build identical scenarios.
func (s *System) Instances(run int, specs ...TaskSpec) ([]*Instance, error) {
	rng := workload.RNGFor(0x9ced, run)
	out := make([]*Instance, 0, len(specs))
	for i, spec := range specs {
		batch := spec.Batch
		if batch <= 0 {
			batch = 1
		}
		prio := spec.Priority
		if prio == 0 {
			prio = Medium
		}
		inst, err := s.gen.InstanceByName(i, spec.Model, batch, prio,
			s.opt.NPU.Cycles(spec.Arrival), rng)
		if err != nil {
			return nil, err
		}
		out = append(out, inst)
	}
	return out, nil
}

// Result is the outcome of one simulated multi-tenant run.
type Result struct {
	// Metrics are the Equation 1-2 figures of merit.
	Metrics Metrics
	// Tasks are the completed scheduler entries.
	Tasks []*Task
	// Preemptions are the serviced preemption events.
	Preemptions []PreemptionEvent
	// MakespanCycles is the completion time of the last task.
	MakespanCycles int64
	// Wakes counts scheduler invocations.
	Wakes int64
	// Timeline reconstructs NPU occupancy for rendering.
	Timeline *Timeline
}

// checkFresh rejects instances that already ran through a simulation:
// scheduler entries are stateful (tokens, execution cursor, completion),
// so re-simulating one silently produces garbage. Regenerate the
// workload (same run index gives the identical mix) instead.
func checkFresh(tasks []*Instance) error {
	for _, t := range tasks {
		if t.Completion >= 0 || t.Start >= 0 {
			return fmt.Errorf("prema: task %d (%s) was already simulated; instances are single-use — regenerate the workload",
				t.ID, t.Model)
		}
	}
	return nil
}

// Simulate runs one workload under the given scheduler configuration.
// Instances are single-use: draw a fresh workload (same run index, same
// mix) for every Simulate call.
func (s *System) Simulate(cfg Scheduler, tasks []*Instance) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkFresh(tasks); err != nil {
		return nil, err
	}
	policy, err := sched.ByName(string(cfg.Policy), s.opt.Sched)
	if err != nil {
		return nil, err
	}
	var selector MechanismSelector
	if cfg.Preemptive {
		selector, err = sched.SelectorByName(string(cfg.mechanism()))
		if err != nil {
			return nil, err
		}
	}
	simulator, err := sim.New(sim.Options{
		NPU: s.opt.NPU, Sched: s.opt.Sched,
		Policy: policy, Preemptive: cfg.Preemptive, Selector: selector,
	}, workload.SchedTasks(tasks))
	if err != nil {
		return nil, err
	}
	res, err := simulator.Run()
	if err != nil {
		return nil, err
	}
	m, err := metrics.FromTasks(res.Tasks)
	if err != nil {
		return nil, err
	}
	return &Result{
		Metrics:        m,
		Tasks:          res.Tasks,
		Preemptions:    res.Preemptions,
		MakespanCycles: res.Cycles,
		Wakes:          res.Wakes,
		Timeline:       res.Timeline,
	}, nil
}

// SLAViolationRate reports the fraction of tasks violating an SLA target
// expressed as a multiple of each task's isolated execution time.
func (r *Result) SLAViolationRate(target float64) float64 {
	return metrics.SLAViolationRate(r.Tasks, target)
}

// ServicedPreemptions counts the preemption events that actually
// interrupted a running task (DRAIN lets the runner finish and so does
// not count).
func (r *Result) ServicedPreemptions() int {
	n := 0
	for _, ev := range r.Preemptions {
		if ev.Cost.Mechanism != Drain {
			n++
		}
	}
	return n
}

// NodeResult aggregates a cluster simulation.
type NodeResult struct {
	// Metrics span all tasks on all NPUs.
	Metrics Metrics
	// Tasks pools the completed scheduler entries.
	Tasks []*Task
	// PerNPU summarizes each accelerator's share.
	PerNPU []NPUStats
	// Preemptions counts serviced preemptions clusterwide.
	Preemptions int
}

// SLAViolationRate reports the fraction of tasks violating an SLA target
// expressed as a multiple of each task's isolated execution time.
func (r *NodeResult) SLAViolationRate(target float64) float64 {
	return metrics.SLAViolationRate(r.Tasks, target)
}

// SimulateNode routes the workload across the node's NPUs and simulates
// each accelerator under its local scheduler.
func (s *System) SimulateNode(node Node, tasks []*Instance) (*NodeResult, error) {
	if err := node.Validate(); err != nil {
		return nil, err
	}
	if err := checkFresh(tasks); err != nil {
		return nil, err
	}
	routing, err := node.Routing.toCluster()
	if err != nil {
		return nil, err
	}
	parallel := node.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	res, err := cluster.Run(cluster.Options{
		NPUs: node.NPUs, Routing: routing,
		NPU: s.opt.NPU, Sched: s.opt.Sched,
		LocalPolicy: string(node.Local.Policy),
		Preemptive:  node.Local.Preemptive,
		Selector:    string(node.Local.mechanism()),
		Parallel:    parallel,
	}, tasks)
	if err != nil {
		return nil, err
	}
	return &NodeResult{
		Metrics:     res.Metrics,
		Tasks:       res.Tasks,
		PerNPU:      res.PerNPU,
		Preemptions: res.Preemptions,
	}, nil
}

// Version identifies the reproduction release.
const Version = "2.0.0"
