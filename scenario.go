package prema

// scenario.go is the chaos-engineering surface of the facade: declarative
// scenarios (internal/scenario's text format) parsed with ParseScenario
// and executed with System.RunScenario. A scenario declares a fleet, a
// local scheduler, an optional autoscale policy, an offered-load ramp, a
// timed fault-injection schedule (NPU failures, slowdowns, cordons) and
// assertions over the outcome; the executor drives a streaming node
// session through the whole timeline deterministically, so the same
// scenario text and seed replay byte-identically. The scenarios/ corpus
// at the repository root holds the curated examples premasim -scenario
// runs.

import (
	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/serving"
)

type (
	// Scenario is one declarative chaos scenario: fleet, scheduler,
	// load ramp, fault-injection events and assertions. Build it with
	// ParseScenario or construct it directly (then Validate).
	Scenario = scenario.Scenario
	// ScenarioFleet is the scenario's NPU fleet shape (initial size
	// plus autoscale bounds).
	ScenarioFleet = scenario.Fleet
	// ScenarioEvent is one timed fault-injection operation.
	ScenarioEvent = scenario.Event
	// ScenarioAssertion is one pass/fail condition of a scenario.
	ScenarioAssertion = scenario.Assertion
	// ScenarioReport is an executed scenario's outcome: verdict,
	// annotated fleet timeline, assertion results and served summary,
	// with a deterministic ASCII Render.
	ScenarioReport = scenario.Report
	// ScenarioTimelineEntry is one fleet-timeline event in stream
	// milliseconds.
	ScenarioTimelineEntry = scenario.TimelineEntry
	// ScenarioAssertResult is one evaluated assertion.
	ScenarioAssertResult = scenario.AssertResult
	// ScenarioSummary is the scenario's served statistics.
	ScenarioSummary = scenario.Summary
	// ChaosOp is one fault-injection operation against a node backend
	// (fail, slowdown, restore, cordon, uncordon).
	ChaosOp = serving.NodeOp
	// ChaosOpKind identifies a chaos operation.
	ChaosOpKind = serving.OpKind
	// NodeRouting is the routing-policy enum scenarios carry (the
	// string-typed Routing identifiers map onto it; see ParseRouting).
	NodeRouting = cluster.RoutingPolicy
)

// Chaos operation kinds.
const (
	// ChaosFail removes the backend involuntarily; its in-flight work
	// re-routes through the node's router at the failure time.
	ChaosFail = serving.FailNPU
	// ChaosSlow degrades the backend: work routed to it while slowed
	// takes Factor times its nominal service time.
	ChaosSlow = serving.SlowNPU
	// ChaosRestore returns a slowed backend to nominal speed.
	ChaosRestore = serving.RestoreNPU
	// ChaosCordon takes the backend out of rotation reversibly, with no
	// scale-down credit.
	ChaosCordon = serving.CordonNPU
	// ChaosUncordon returns a cordoned backend to rotation.
	ChaosUncordon = serving.UncordonNPU
)

// Scenario assertion kinds.
const (
	// AssertSLO bounds the SLO-violation fraction.
	AssertSLO = scenario.AssertSLO
	// AssertFleetBetween bounds the fleet size over a window.
	AssertFleetBetween = scenario.AssertFleetBetween
	// AssertRecoveredBy requires the fleet back at its pre-disruption
	// size by a deadline.
	AssertRecoveredBy = scenario.AssertRecoveredBy
	// AssertTierSLO bounds one hardware tier's SLO-violation fraction.
	AssertTierSLO = scenario.AssertTierSLO
)

// Scenario routing values (NodeRouting); the typed Routing identifiers
// RoundRobin/LeastQueued/LeastWork are the string-facing equivalents.
const (
	NodeRoundRobin  = cluster.RoundRobin
	NodeLeastQueued = cluster.LeastQueued
	NodeLeastWork   = cluster.LeastWork
)

// ParseScenario reads a declarative scenario from its text form (see
// the scenarios/ corpus and internal/scenario's grammar reference) and
// validates it.
func ParseScenario(src string) (*Scenario, error) {
	return scenario.Parse(src)
}

// RunScenario executes one scenario against the system's hardware and
// workload configuration and reports the outcome. A failed assertion
// fails the report (Report.Passed), not the run; RunScenario errors
// only on invalid scenarios or runs the session itself rejects (for
// example failing the last active NPU).
func (s *System) RunScenario(sc *Scenario) (*ScenarioReport, error) {
	srv := serving.NewServer(s.opt.NPU, s.opt.Sched, s.gen)
	return scenario.Run(srv, sc)
}

// RunScenarioTraced executes one scenario with a telemetry handle
// (NewTelemetry) attached to the node session: the report additionally
// carries the merged per-request trace (Report.Events, when tr.Tracer
// is set) and the tick-metric series (Report.Samples, when tr.Recorder
// is set and the scenario has a scaler). The simulated stream is
// identical to RunScenario's — telemetry only observes it.
func (s *System) RunScenarioTraced(sc *Scenario, tr *Telemetry) (*ScenarioReport, error) {
	srv := serving.NewServer(s.opt.NPU, s.opt.Sched, s.gen)
	return scenario.RunWithTrace(srv, sc, tr)
}
