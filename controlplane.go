package prema

// controlplane.go is the live-operations surface of the facade:
// System.OpenControlPlane returns a ControlPlane — internal/ctl's
// interactive fleet driver — owning an autoscaled node fleet whose
// deterministic stream clock can be paced against wall time, paused,
// single-stepped, and driven by operator commands (cordon, drain, fail,
// scale, load, snapshot, report). Commands serialize into the clock
// loop between ticks, so the same command script at the same virtual
// timestamps replays byte-identically, and a scripted session is
// stat-identical to the equivalent declarative scenario run. Runs
// export through the shared RunReport schema (JSON and self-contained
// HTML) that premasim -scenario emits too, via ReportFromScenario.

import (
	"time"

	"repro/internal/ctl"
	"repro/internal/dnn"
	"repro/internal/serving"
)

type (
	// ControlPlane is a live control plane over one node-session fleet:
	// Exec runs operator commands, RunScript drives a timestamped
	// command script, Pace advances against wall time, Snapshot and
	// Report observe the run, Handler mirrors it all over HTTP. All
	// methods are safe for concurrent use.
	ControlPlane = ctl.Plane
	// ControlSnapshot is the plane's point-in-time metrics view: fleet
	// composition, tick-window latency percentiles, SLO-violation
	// fraction and the scaling-timeline tail.
	ControlSnapshot = ctl.Snapshot
	// ControlCommand is one executed command on a run's log.
	ControlCommand = ctl.CommandRecord
	// RunReport is the exportable run outcome shared by control plane
	// sessions and scenario runs: fleet timeline, latency/SLO summary,
	// command log, JSON and self-contained HTML renderings.
	RunReport = ctl.RunReport
)

// ControlPlaneConfig parameterizes a live control plane.
type ControlPlaneConfig struct {
	// NPUs is the initial fleet size (>= 1); with Autoscale set it must
	// lie inside the configured bounds.
	NPUs int
	// Routing selects the router policy; empty defaults to RoundRobin.
	Routing Routing
	// Scheduler is the NPU-local scheduling configuration.
	Scheduler Scheduler
	// Models restricts the generated request mix (labels per
	// System.Models); empty serves the eight-model evaluation suite.
	Models []string
	// Horizon is the reference horizon for the warm-up cut; 0 derives
	// it from the latest arrival.
	Horizon time.Duration
	// WarmupFraction of the horizon is excluded from latency statistics
	// (default 0.2).
	WarmupFraction float64
	// Autoscale attaches an SLO-driven scaling policy; nil keeps the
	// fleet fixed (the `scale` command still works, unbounded).
	Autoscale *AutoscaleConfig
	// Seed drives arrival sampling deterministically; 0 selects the
	// fixed default shared with scenarios.
	Seed uint64
	// Segment is the arrival-generation window (default 20ms); `load`
	// changes take effect at segment boundaries, like a scenario ramp.
	Segment time.Duration
	// Step is the clock-advance granularity of paced and `step` mode
	// (default 1ms).
	Step time.Duration
	// TimeScale is virtual seconds per wall second under Pace; 0
	// disables wall pacing entirely (manual stepping / scripted CI mode).
	TimeScale float64
	// Load is the initial offered load per NPU-capacity; 0 starts idle.
	Load float64
	// Name labels the run's report (default "control-plane").
	Name string
	// Fleet is an optional weighted hardware-tier template
	// ("70%:fast,30%:slow", see NodeSessionConfig.Fleet); empty keeps
	// the fleet homogeneous.
	Fleet string
	// Trace attaches a telemetry handle (NewTelemetry) to the plane's
	// node: the `trace`/`metrics` commands and the /trace and /metrics
	// HTTP endpoints read from it. nil disables telemetry.
	Trace *Telemetry
}

// OpenControlPlane validates the configuration and opens a live control
// plane over a fresh node fleet.
func (s *System) OpenControlPlane(cfg ControlPlaneConfig) (*ControlPlane, error) {
	if err := cfg.Scheduler.Validate(); err != nil {
		return nil, err
	}
	routing, err := cfg.Routing.toCluster()
	if err != nil {
		return nil, err
	}
	for _, name := range cfg.Models {
		if _, err := dnn.ByName(name); err != nil {
			return nil, err
		}
	}
	var scale *serving.AutoscaleConfig
	if cfg.Autoscale != nil {
		if err := cfg.Autoscale.Validate(); err != nil {
			return nil, err
		}
		scale = cfg.Autoscale.toServing()
	}
	var tiers []serving.Tier
	if cfg.Fleet != "" {
		if tiers, err = serving.FleetFromTemplate(s.opt.NPU, cfg.Fleet); err != nil {
			return nil, err
		}
	}
	srv := serving.NewServer(s.opt.NPU, s.opt.Sched, s.gen)
	return ctl.New(srv, ctl.Config{
		Node: serving.NodeConfig{
			NPUs:      cfg.NPUs,
			Fleet:     tiers,
			Routing:   routing,
			Autoscale: scale,
			Trace:     cfg.Trace,
			Session: serving.SessionConfig{
				Policy:         string(cfg.Scheduler.Policy),
				Preemptive:     cfg.Scheduler.Preemptive,
				Selector:       string(cfg.Scheduler.mechanism()),
				Horizon:        cfg.Horizon,
				WarmupFraction: cfg.WarmupFraction,
			},
		},
		Models:    cfg.Models,
		Seed:      cfg.Seed,
		Segment:   cfg.Segment,
		Step:      cfg.Step,
		TimeScale: cfg.TimeScale,
		Load:      cfg.Load,
		Name:      cfg.Name,
	})
}

// ReportFromScenario converts an executed scenario's report into the
// shared RunReport schema, so scenario runs export the same JSON and
// HTML artifacts as control plane sessions.
func ReportFromScenario(rep *ScenarioReport) *RunReport {
	return ctl.FromScenario(rep)
}
