// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its experiment against
// the simulator and reports the headline quantities via b.ReportMetric so
// `go test -bench=. -benchmem` reproduces the paper's numbers alongside
// the harness's own cost.
//
// Micro-benchmarks for the substrates (compiler, execution cursor,
// functional systolic array, end-to-end simulation) follow at the bottom.
package prema

import (
	"flag"
	"strconv"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/dnn"
	"repro/internal/exp"
	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/systolic"
	"repro/internal/workload"
)

// benchCache mirrors premabench's -cache flag, but defaults off: each
// benchmark re-runs one experiment b.N times over a single suite, so a
// warm cache would answer every iteration after the first from memory
// and ns/op would stop tracking simulator cost — the regression these
// benchmarks exist to catch. Pass -cache to measure the amortized
// cached path instead. Results are bit-identical either way.
var benchCache = flag.Bool("cache", false,
	"enable the cross-experiment simulation-result cache in benchmark suites")

// benchSuite builds an experiment suite sized for benchmarking: fewer
// runs per configuration than the paper's 25 so a full -bench=. sweep
// stays in the minutes range while preserving every qualitative outcome.
func benchSuite(b *testing.B) *exp.Suite {
	b.Helper()
	s, err := exp.NewSuite()
	if err != nil {
		b.Fatal(err)
	}
	s.Runs = 8
	if !*benchCache {
		s.Cache = nil
	}
	return s
}

// TestBenchCacheFlagThreads proves the -cache flag reaches the suite.
func TestBenchCacheFlagThreads(t *testing.T) {
	s, err := exp.NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	if s.Cache == nil {
		t.Error("NewSuite should default-enable the run cache")
	}
	if *benchCache {
		t.Error("benchmarks must default to cache-off so ns/op tracks simulator cost")
	}
}

// cell parses a numeric table cell such as "7.81x", "36.0", "12.3%".
func cell(b *testing.B, s string) float64 {
	b.Helper()
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cannot parse cell %q: %v", s, err)
	}
	return v
}

// runExperiment executes one registered experiment per iteration and
// returns the last iteration's tables.
func runExperiment(b *testing.B, id string) []*exp.Table {
	b.Helper()
	s := benchSuite(b)
	var tables []*exp.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := exp.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		tables, err = e.Run(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	return tables
}

// rowByLabel indexes a table's rows by their first cell.
func rowByLabel(t *exp.Table) map[string][]string {
	m := make(map[string][]string, len(t.Rows))
	for _, r := range t.Rows {
		m[r[0]] = r
	}
	return m
}

// BenchmarkFig01Colocation regenerates Figure 1: co-locating GoogLeNet
// and ResNet under NP-FCFS raises throughput at a latency cost.
func BenchmarkFig01Colocation(b *testing.B) {
	tables := runExperiment(b, "fig1")
	sum, err := exp.Fig1Headline(tables[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(sum.ThroughputGain, "throughput-gain-x")
	b.ReportMetric(sum.LatencyCost, "latency-cost-x")
}

// BenchmarkFig05PreemptionLatency regenerates Figure 5: preemption
// latency and preempting-task wait time per mechanism.
func BenchmarkFig05PreemptionLatency(b *testing.B) {
	tables := runExperiment(b, "fig5")
	latAvg := tables[0].Rows[len(tables[0].Rows)-1]
	waitAvg := tables[1].Rows[len(tables[1].Rows)-1]
	b.ReportMetric(cell(b, latAvg[3]), "ckpt-latency-us")
	b.ReportMetric(cell(b, waitAvg[4])/1000, "drain-wait-ms")
}

// BenchmarkFig06MechanismSTPNTT regenerates Figure 6: STP and NTT
// improvements per preemption mechanism.
func BenchmarkFig06MechanismSTPNTT(b *testing.B) {
	tables := runExperiment(b, "fig6")
	stpAvg := tables[0].Rows[len(tables[0].Rows)-1]
	nttAvg := tables[1].Rows[len(tables[1].Rows)-1]
	b.ReportMetric(cell(b, stpAvg[2]), "kill-stp-x")
	b.ReportMetric(cell(b, stpAvg[3]), "ckpt-stp-x")
	b.ReportMetric(cell(b, nttAvg[3]), "ckpt-ntt-x")
}

// BenchmarkFig07ActivationDensity regenerates Figure 7: VGG per-layer
// activation density stability across 1000 inferences.
func BenchmarkFig07ActivationDensity(b *testing.B) {
	tables := runExperiment(b, "fig7")
	var maxIQR float64
	for _, r := range tables[0].Rows {
		if v := cell(b, r[6]); v > maxIQR {
			maxIQR = v
		}
	}
	b.ReportMetric(maxIQR, "max-density-iqr")
}

// BenchmarkFig09SeqLenCharacterization regenerates Figure 9: the
// input-vs-output sequence length characterization graphs.
func BenchmarkFig09SeqLenCharacterization(b *testing.B) {
	tables := runExperiment(b, "fig9")
	b.ReportMetric(float64(len(tables)), "panels")
}

// BenchmarkFig10MACsVsTime regenerates Figure 10: per-layer MAC count vs
// execution time, exposing the low-utilization outliers.
func BenchmarkFig10MACsVsTime(b *testing.B) {
	tables := runExperiment(b, "fig10")
	outliers := 0
	for _, r := range tables[0].Rows {
		if r[6] == "YES" {
			outliers++
		}
	}
	b.ReportMetric(float64(len(tables[0].Rows)), "layers")
	b.ReportMetric(float64(outliers), "low-util-outliers")
}

// BenchmarkFig11NonPreemptive regenerates Figure 11: the six schedulers
// on a non-preemptive NPU.
func BenchmarkFig11NonPreemptive(b *testing.B) {
	tables := runExperiment(b, "fig11")
	rows := rowByLabel(tables[0])
	b.ReportMetric(cell(b, rows["NP-SJF"][4]), "sjf-antt-x")
	b.ReportMetric(cell(b, rows["NP-PREMA"][4]), "prema-antt-x")
	b.ReportMetric(cell(b, rows["NP-PREMA"][5]), "prema-fairness-x")
}

// BenchmarkFig12PreemptiveDynamic regenerates Figure 12: static
// CHECKPOINT vs Algorithm 3 dynamic selection (paper headline: 7.8x ANTT,
// 19.6x fairness, 1.4x STP for Dynamic-PREMA).
func BenchmarkFig12PreemptiveDynamic(b *testing.B) {
	tables := runExperiment(b, "fig12")
	rows := rowByLabel(tables[0])
	b.ReportMetric(cell(b, rows["Dynamic-PREMA"][4]), "prema-antt-x")
	b.ReportMetric(cell(b, rows["Dynamic-PREMA"][5]), "prema-fairness-x")
	b.ReportMetric(cell(b, rows["Dynamic-PREMA"][6]), "prema-stp-x")
}

// BenchmarkFig13SLA regenerates Figure 13: SLA violation rate vs target.
func BenchmarkFig13SLA(b *testing.B) {
	tables := runExperiment(b, "fig13")
	t := tables[0]
	// Row for SLA target 4x, NP-FCFS and Dynamic-PREMA columns.
	row := t.Rows[1]
	b.ReportMetric(cell(b, row[1]), "fcfs-viol-at4-pct")
	b.ReportMetric(cell(b, row[len(row)-1]), "prema-viol-at4-pct")
}

// BenchmarkFig14TailLatency regenerates Figure 14: 95th-percentile tail
// latency of high-priority batch-1 tasks.
func BenchmarkFig14TailLatency(b *testing.B) {
	tables := runExperiment(b, "fig14")
	avg := tables[0].Rows[len(tables[0].Rows)-1]
	b.ReportMetric(cell(b, avg[5]), "fcfs-tail-x")
	b.ReportMetric(cell(b, avg[6]), "prema-tail-x")
}

// BenchmarkFig15KillVsCheckpoint regenerates Figure 15: the CHECKPOINT
// vs KILL sensitivity study.
func BenchmarkFig15KillVsCheckpoint(b *testing.B) {
	tables := runExperiment(b, "fig15")
	rows := rowByLabel(tables[0])
	b.ReportMetric(cell(b, rows["Dynamic-PREMA"][4]), "ckpt-prema-antt-x")
	b.ReportMetric(cell(b, rows["DynamicKill-PREMA"][4]), "kill-prema-antt-x")
}

// BenchmarkPredictionAccuracy regenerates the Section VI-A result: the
// Algorithm 1 predictor's error and correlation.
func BenchmarkPredictionAccuracy(b *testing.B) {
	tables := runExperiment(b, "accuracy")
	last := tables[0].Rows[len(tables[0].Rows)-1]
	b.ReportMetric(cell(b, last[1]), "mean-error-pct")
	b.ReportMetric(cell(b, last[5]), "correlation")
}

// BenchmarkFig12OracleComparison regenerates Section VI-D: predicted
// PREMA vs an oracle fed exact execution times.
func BenchmarkFig12OracleComparison(b *testing.B) {
	tables := runExperiment(b, "oracle")
	ratio := tables[0].Rows[len(tables[0].Rows)-1]
	b.ReportMetric(cell(b, ratio[1]), "antt-vs-oracle-pct")
	b.ReportMetric(cell(b, ratio[2]), "stp-vs-oracle-pct")
}

// BenchmarkSensitivity regenerates the Section VI-E sweeps (batch sizes,
// quanta, contention, task counts).
func BenchmarkSensitivity(b *testing.B) {
	tables := runExperiment(b, "sensitivity")
	minANTT := 1e18
	for _, r := range tables[0].Rows {
		if v := cell(b, r[1]); v < minANTT {
			minANTT = v
		}
	}
	b.ReportMetric(minANTT, "min-antt-x")
}

// BenchmarkThresholdAblation regenerates the Algorithm 2 candidate
// threshold ablation.
func BenchmarkThresholdAblation(b *testing.B) {
	tables := runExperiment(b, "threshold")
	b.ReportMetric(cell(b, tables[0].Rows[0][1]), "paper-threshold-antt-x")
}

// BenchmarkPredictorAblation regenerates the analytic vs profile-based vs
// MAC-proxy predictor comparison.
func BenchmarkPredictorAblation(b *testing.B) {
	tables := runExperiment(b, "predictors")
	var analytic, proxy float64
	for _, r := range tables[0].Rows {
		analytic += cell(b, r[1])
		proxy += cell(b, r[3])
	}
	n := float64(len(tables[0].Rows))
	b.ReportMetric(analytic/n, "analytic-err-pct")
	b.ReportMetric(proxy/n, "macproxy-err-pct")
}

// BenchmarkStorageOverhead regenerates the Sections IV-F/VI-F/VI-G
// overhead analysis.
func BenchmarkStorageOverhead(b *testing.B) {
	tables := runExperiment(b, "overhead")
	b.ReportMetric(float64(len(tables[1].Rows)), "model-batch-rows")
}

// BenchmarkDeterminismCharacterization regenerates the Section V-B
// GPU/TPU/SCNN latency-determinism studies.
func BenchmarkDeterminismCharacterization(b *testing.B) {
	tables := runExperiment(b, "determinism")
	rows := rowByLabel(tables[0])
	b.ReportMetric(cell(b, rows["CloudTPUv2"][2]), "tpu-stddev-pct")
}

// BenchmarkClusterScaling regenerates the beyond-paper multi-NPU node
// experiment (routing policies x local schedulers x node sizes).
func BenchmarkClusterScaling(b *testing.B) {
	tables := runExperiment(b, "cluster")
	// Last row: 4 NPUs, least-work router, Dynamic-PREMA.
	last := tables[0].Rows[len(tables[0].Rows)-1]
	b.ReportMetric(cell(b, last[3]), "4npu-prema-antt")
	b.ReportMetric(cell(b, last[4]), "4npu-prema-stp")
}

// BenchmarkKillGranularity regenerates the footnote-2 restart-granularity
// ablation (KILL from scratch vs from layer vs CHECKPOINT).
func BenchmarkKillGranularity(b *testing.B) {
	tables := runExperiment(b, "killgranularity")
	rows := tables[0].Rows
	b.ReportMetric(cell(b, rows[0][4]), "ckpt-wasted-Mcycles")
	b.ReportMetric(cell(b, rows[1][4]), "killlayer-wasted-Mcycles")
	b.ReportMetric(cell(b, rows[2][4]), "kill-wasted-Mcycles")
}

// BenchmarkEnergyAccounting regenerates the Section VI-F energy argument:
// PREMA's overhead is negligible, KILL's re-execution is not.
func BenchmarkEnergyAccounting(b *testing.B) {
	tables := runExperiment(b, "energy")
	rows := rowByLabel(tables[0])
	b.ReportMetric(cell(b, rows["Dynamic-PREMA"][8]), "prema-energy-x")
	b.ReportMetric(cell(b, rows["StaticKill-PREMA"][8]), "kill-energy-x")
}

// BenchmarkLoadCurve regenerates the sustained-load throughput-latency
// curves (serving regime, beyond-paper extension).
func BenchmarkLoadCurve(b *testing.B) {
	tables := runExperiment(b, "loadcurve")
	// Highest-load row: NP-FCFS vs PREMA mean NTT.
	last := tables[0].Rows[len(tables[0].Rows)-1]
	b.ReportMetric(cell(b, last[1]), "fcfs-ntt-at95load")
	b.ReportMetric(cell(b, last[5]), "prema-ntt-at95load")
}

// BenchmarkCheckpointSpill regenerates the Section VI-G finite-storage
// sweep.
func BenchmarkCheckpointSpill(b *testing.B) {
	tables := runExperiment(b, "spill")
	rows := tables[0].Rows
	b.ReportMetric(cell(b, rows[0][2]), "unlimited-ckpt-us")
	b.ReportMetric(cell(b, rows[len(rows)-1][2]), "1mb-pool-ckpt-us")
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------

// BenchmarkCompileVGG16 measures lowering VGG-16 (batch 4) to the NPU
// instruction stream.
func BenchmarkCompileVGG16(b *testing.B) {
	c, err := compiler.New(npu.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := dnn.VGG16()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compile(m, 4, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileRNNMT2 measures lowering the character-level translator
// with a long unrolled decode.
func BenchmarkCompileRNNMT2(b *testing.B) {
	c, err := compiler.New(npu.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	m, err := dnn.ByName("RNN-MT2")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compile(m, 1, 30, 160); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutionAdvance measures stepping an execution cursor through
// a compiled VGG-16 program in quantum-sized slices.
func BenchmarkExecutionAdvance(b *testing.B) {
	cfg := npu.DefaultConfig()
	c, err := compiler.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := c.Compile(dnn.VGG16(), 4, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	quantum := cfg.Cycles(sched.DefaultConfig().Quantum)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := npu.NewExecution(prog)
		for !e.Done() {
			e.Advance(quantum)
		}
	}
}

// BenchmarkSystolicStream measures the functional cycle-stepped systolic
// array on a 32x32 tile with 64 activation columns.
func BenchmarkSystolicStream(b *testing.B) {
	a, err := systolic.New(32, 32)
	if err != nil {
		b.Fatal(err)
	}
	w := make([][]int32, 32)
	for i := range w {
		w[i] = make([]int32, 32)
		for j := range w[i] {
			w[i][j] = int32(i - j)
		}
	}
	if err := a.LoadWeights(w); err != nil {
		b.Fatal(err)
	}
	act := make([][]int32, 64)
	for t := range act {
		act[t] = make([]int32, 32)
		for i := range act[t] {
			act[t][i] = int32(t + i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Stream(act); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateEightTasksPREMA measures one full 8-task multi-tenant
// simulation under Dynamic-PREMA, the paper's primary configuration.
func BenchmarkSimulateEightTasksPREMA(b *testing.B) {
	cfg := npu.DefaultConfig()
	scfg := sched.DefaultConfig()
	gen, err := workload.NewGenerator(cfg, 0xA11CE)
	if err != nil {
		b.Fatal(err)
	}
	policy, err := sched.ByName("PREMA", scfg)
	if err != nil {
		b.Fatal(err)
	}
	selector, err := sched.SelectorByName("dynamic")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tasks, err := gen.Generate(workload.Spec{Tasks: 8}, workload.RNGFor(1, i%16))
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.New(sim.Options{NPU: cfg, Sched: scfg, Policy: policy,
			Preemptive: true, Selector: selector}, workload.SchedTasks(tasks))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
