package prema

import (
	"strings"
	"testing"
	"time"
)

func newSystem(t *testing.T, opts ...Option) *System {
	t.Helper()
	sys, err := NewSystem(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemValidatesConfig(t *testing.T) {
	bad := DefaultNPUConfig()
	bad.SW = 0
	if _, err := NewSystem(WithNPU(bad)); err == nil {
		t.Error("invalid NPU config should be rejected")
	}
	scfg := DefaultSchedConfig()
	scfg.Quantum = 0
	if _, err := NewSystem(WithSchedConfig(scfg)); err == nil {
		t.Error("non-positive quantum should be rejected")
	}
}

func TestSystemOptions(t *testing.T) {
	sys := newSystem(t, WithQuantum(500*time.Microsecond), WithProfileSeed(42))
	if got := sys.SchedConfig().Quantum; got != 500*time.Microsecond {
		t.Errorf("quantum %v, want 500µs", got)
	}
	cfg := DefaultNPUConfig()
	cfg.SW, cfg.SH = 64, 64
	sys = newSystem(t, WithNPU(cfg))
	if got := sys.NPU().SW; got != 64 {
		t.Errorf("systolic width %d, want 64", got)
	}
}

func TestModelsListed(t *testing.T) {
	sys := newSystem(t)
	names := sys.Models()
	if len(names) < 8 {
		t.Fatalf("only %d models listed", len(names))
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"CNN-VN", "RNN-MT2", "RNN-ASR"} {
		if !strings.Contains(joined, want) {
			t.Errorf("model %s missing from zoo listing", want)
		}
	}
	if len(SuiteModels()) != 8 {
		t.Errorf("evaluation suite has %d models, want 8", len(SuiteModels()))
	}
}

func TestWorkloadOptions(t *testing.T) {
	sys := newSystem(t)
	tasks, err := sys.Workload(WorkloadSpec{
		Tasks:         5,
		Models:        []string{"CNN-AN", "CNN-GN"},
		BatchSizes:    []int{4},
		ArrivalWindow: 5 * time.Millisecond,
		Priority:      High,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if task.Model != "CNN-AN" && task.Model != "CNN-GN" {
			t.Errorf("model %s outside restricted pool", task.Model)
		}
		if task.Batch != 4 {
			t.Errorf("batch %d, want 4", task.Batch)
		}
		if task.Priority != High {
			t.Errorf("priority %v, want high", task.Priority)
		}
	}
	if _, err := sys.Workload(WorkloadSpec{Tasks: 2, Models: []string{"NOPE"}}, 0); err == nil {
		t.Error("unknown model in spec should error")
	}
	if _, err := sys.Workload(WorkloadSpec{Tasks: 2, Estimator: "psychic"}, 0); err == nil {
		t.Error("unknown estimator in spec should error")
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	sys := newSystem(t)
	tasks, err := sys.Workload(WorkloadSpec{Tasks: 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Simulate(Scheduler{Policy: PREMA, Preemptive: true, Mechanism: Dynamic}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ANTT < 1 {
		t.Errorf("ANTT %v below 1", res.Metrics.ANTT)
	}
	if res.Metrics.STP <= 0 || res.Metrics.STP > 6 {
		t.Errorf("STP %v outside (0, n]", res.Metrics.STP)
	}
	if res.MakespanCycles <= 0 {
		t.Error("non-positive makespan")
	}
	if res.Wakes <= 0 {
		t.Error("non-positive wake count")
	}
	if res.SLAViolationRate(1e9) != 0 {
		t.Error("infinite SLA target should never be violated")
	}
	if res.ServicedPreemptions() > len(res.Preemptions) {
		t.Error("serviced preemptions exceed events")
	}
	if err := res.Timeline.Validate(); err != nil {
		t.Errorf("timeline overlaps: %v", err)
	}
	if out := res.Timeline.Render(sys.NPU(), 80); !strings.Contains(out, "#") {
		t.Error("timeline render empty")
	}
}

func TestSimulateDefaultsMechanism(t *testing.T) {
	sys := newSystem(t)
	tasks, err := sys.Workload(WorkloadSpec{Tasks: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Preemptive with no mechanism specified defaults to dynamic.
	if _, err := sys.Simulate(Scheduler{Policy: SJF, Preemptive: true}, tasks); err != nil {
		t.Fatal(err)
	}
}

func TestInstances(t *testing.T) {
	sys := newSystem(t)
	insts, err := sys.Instances(1,
		TaskSpec{Model: "CNN-VN", Batch: 16, Priority: Low},
		TaskSpec{Model: "RNN-MT2", Arrival: 2 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 {
		t.Fatalf("built %d instances, want 2", len(insts))
	}
	if insts[0].Batch != 16 || insts[0].Priority != Low {
		t.Errorf("spec not honored: %+v", insts[0].Task)
	}
	if insts[1].Priority != Medium {
		t.Errorf("zero priority should default to medium, got %v", insts[1].Priority)
	}
	if insts[1].Arrival != sys.NPU().Cycles(2*time.Millisecond) {
		t.Errorf("arrival %d cycles, want %d", insts[1].Arrival, sys.NPU().Cycles(2*time.Millisecond))
	}
	if insts[1].InLen <= 0 {
		t.Error("RNN instance missing sampled input length")
	}
	if _, err := sys.Instances(0, TaskSpec{Model: "NOPE"}); err == nil {
		t.Error("unknown model should error")
	}
}

func TestPREMABeatsFCFSOnWorkloadAverage(t *testing.T) {
	// The repository's headline claim, exercised through the public
	// API: PREMA with dynamic preemption improves ANTT over NP-FCFS.
	sys := newSystem(t)
	const runs = 8
	var fcfs, prema float64
	for r := 0; r < runs; r++ {
		tasks, err := sys.Workload(WorkloadSpec{Tasks: 8}, r)
		if err != nil {
			t.Fatal(err)
		}
		a, err := sys.Simulate(Scheduler{Policy: FCFS}, tasks)
		if err != nil {
			t.Fatal(err)
		}
		fcfs += a.Metrics.ANTT / runs
		tasks, err = sys.Workload(WorkloadSpec{Tasks: 8}, r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sys.Simulate(Scheduler{Policy: PREMA, Preemptive: true, Mechanism: Dynamic}, tasks)
		if err != nil {
			t.Fatal(err)
		}
		prema += b.Metrics.ANTT / runs
	}
	if fcfs/prema < 2 {
		t.Errorf("PREMA ANTT improvement %.2fx over FCFS; expected well above 2x", fcfs/prema)
	}
}

func TestOracleWorkload(t *testing.T) {
	sys := newSystem(t)
	tasks, err := sys.Workload(WorkloadSpec{Tasks: 4, Estimator: "oracle"}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if task.EstimatedCycles != task.IsolatedCycles {
			t.Error("oracle workload should carry exact estimates")
		}
	}
}

func TestSimulateNode(t *testing.T) {
	sys := newSystem(t)
	tasks, err := sys.Workload(WorkloadSpec{Tasks: 12}, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.SimulateNode(Node{
		NPUs: 3, Routing: LeastWork,
		Local: Scheduler{Policy: PREMA, Preemptive: true, Mechanism: Dynamic},
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 12 {
		t.Fatalf("completed %d of 12 tasks", len(res.Tasks))
	}
	if len(res.PerNPU) != 3 {
		t.Fatalf("per-NPU stats for %d NPUs", len(res.PerNPU))
	}
	if res.Metrics.ANTT < 1 {
		t.Errorf("node ANTT %v below 1", res.Metrics.ANTT)
	}
}

func TestSimulateNodeDefaultRouting(t *testing.T) {
	sys := newSystem(t)
	tasks, err := sys.Workload(WorkloadSpec{Tasks: 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SimulateNode(Node{NPUs: 2,
		Local: Scheduler{Policy: FCFS}}, tasks); err != nil {
		t.Errorf("empty routing should default to round-robin: %v", err)
	}
}
