package prema

import (
	"strings"
	"testing"
	"time"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemValidatesConfig(t *testing.T) {
	opt := Defaults()
	opt.NPU.SW = 0
	if _, err := NewSystem(opt); err == nil {
		t.Error("invalid NPU config should be rejected")
	}
}

func TestModelsListed(t *testing.T) {
	sys := newSystem(t)
	names := sys.Models()
	if len(names) < 8 {
		t.Fatalf("only %d models listed", len(names))
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"CNN-VN", "RNN-MT2", "RNN-ASR"} {
		if !strings.Contains(joined, want) {
			t.Errorf("model %s missing from zoo listing", want)
		}
	}
}

func TestWorkloadOptions(t *testing.T) {
	sys := newSystem(t)
	tasks, err := sys.Workload(WorkloadSpec{
		Tasks:         5,
		Models:        []string{"CNN-AN", "CNN-GN"},
		BatchSizes:    []int{4},
		ArrivalWindow: 5 * time.Millisecond,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if task.Model != "CNN-AN" && task.Model != "CNN-GN" {
			t.Errorf("model %s outside restricted pool", task.Model)
		}
		if task.Batch != 4 {
			t.Errorf("batch %d, want 4", task.Batch)
		}
	}
	if _, err := sys.Workload(WorkloadSpec{Tasks: 2, Models: []string{"NOPE"}}, 0); err == nil {
		t.Error("unknown model in spec should error")
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	sys := newSystem(t)
	tasks, err := sys.Workload(WorkloadSpec{Tasks: 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Simulate(Scheduler{Policy: "PREMA", Preemptive: true, Mechanism: "dynamic"}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ANTT < 1 {
		t.Errorf("ANTT %v below 1", res.Metrics.ANTT)
	}
	if res.Metrics.STP <= 0 || res.Metrics.STP > 6 {
		t.Errorf("STP %v outside (0, n]", res.Metrics.STP)
	}
	if res.MakespanCycles <= 0 {
		t.Error("non-positive makespan")
	}
	if res.SLAViolationRate(1e9) != 0 {
		t.Error("infinite SLA target should never be violated")
	}
	if err := res.Timeline.Validate(); err != nil {
		t.Errorf("timeline overlaps: %v", err)
	}
	if out := res.Timeline.Render(sys.NPU(), 80); !strings.Contains(out, "#") {
		t.Error("timeline render empty")
	}
}

func TestSimulateDefaultsMechanism(t *testing.T) {
	sys := newSystem(t)
	tasks, err := sys.Workload(WorkloadSpec{Tasks: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Preemptive with no mechanism specified defaults to dynamic.
	if _, err := sys.Simulate(Scheduler{Policy: "SJF", Preemptive: true}, tasks); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateRejectsUnknownLabels(t *testing.T) {
	sys := newSystem(t)
	tasks, err := sys.Workload(WorkloadSpec{Tasks: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Simulate(Scheduler{Policy: "NOPE"}, tasks); err == nil {
		t.Error("unknown policy should error")
	}
	if _, err := sys.Simulate(Scheduler{Policy: "SJF", Preemptive: true,
		Mechanism: "bogus"}, tasks); err == nil {
		t.Error("unknown mechanism should error")
	}
}

func TestPREMABeatsFCFSOnWorkloadAverage(t *testing.T) {
	// The repository's headline claim, exercised through the public
	// API: PREMA with dynamic preemption improves ANTT over NP-FCFS.
	sys := newSystem(t)
	const runs = 8
	var fcfs, prema float64
	for r := 0; r < runs; r++ {
		tasks, err := sys.Workload(WorkloadSpec{Tasks: 8}, r)
		if err != nil {
			t.Fatal(err)
		}
		a, err := sys.Simulate(Scheduler{Policy: "FCFS"}, tasks)
		if err != nil {
			t.Fatal(err)
		}
		fcfs += a.Metrics.ANTT / runs
		tasks, err = sys.Workload(WorkloadSpec{Tasks: 8}, r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sys.Simulate(Scheduler{Policy: "PREMA", Preemptive: true, Mechanism: "dynamic"}, tasks)
		if err != nil {
			t.Fatal(err)
		}
		prema += b.Metrics.ANTT / runs
	}
	if fcfs/prema < 2 {
		t.Errorf("PREMA ANTT improvement %.2fx over FCFS; expected well above 2x", fcfs/prema)
	}
}

func TestOracleWorkload(t *testing.T) {
	sys := newSystem(t)
	tasks, err := sys.Workload(WorkloadSpec{Tasks: 4, Oracle: true}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if task.EstimatedCycles != task.IsolatedCycles {
			t.Error("oracle workload should carry exact estimates")
		}
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	ids := Experiments()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments exposed", len(ids))
	}
	out, err := RunExperiment("fig7")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || !strings.Contains(out[0], "fig7") {
		t.Error("experiment output empty")
	}
	if _, err := RunExperiment("nope"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestSimulateNode(t *testing.T) {
	sys := newSystem(t)
	tasks, err := sys.Workload(WorkloadSpec{Tasks: 12}, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.SimulateNode(Node{
		NPUs: 3, Routing: "least-work",
		Local: Scheduler{Policy: "PREMA", Preemptive: true, Mechanism: "dynamic"},
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 12 {
		t.Fatalf("completed %d of 12 tasks", len(res.Tasks))
	}
	if len(res.PerNPU) != 3 {
		t.Fatalf("per-NPU stats for %d NPUs", len(res.PerNPU))
	}
	if res.Metrics.ANTT < 1 {
		t.Errorf("node ANTT %v below 1", res.Metrics.ANTT)
	}
	if _, err := sys.SimulateNode(Node{NPUs: 2, Routing: "warp-drive",
		Local: Scheduler{Policy: "FCFS"}}, tasks); err == nil {
		t.Error("unknown routing should error")
	}
}

func TestSimulateNodeDefaultRouting(t *testing.T) {
	sys := newSystem(t)
	tasks, err := sys.Workload(WorkloadSpec{Tasks: 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SimulateNode(Node{NPUs: 2,
		Local: Scheduler{Policy: "FCFS"}}, tasks); err != nil {
		t.Errorf("empty routing should default to round-robin: %v", err)
	}
}
