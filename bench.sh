#!/bin/sh
# bench.sh — serving-path performance tracking in one command: runs the
# streaming hot-path benchmarks (NodeSession submit throughput, router
# decide cost, autoscale tick overhead, end-to-end chaos-scenario
# replay, control-plane snapshot under load) and emits
# BENCH_serving.json so
# the perf trajectory is diffable from PR to PR. The derived
# "autoscale-tick-overhead" entry is the per-request ns delta between
# the autoscaled and the plain submit path; "trace-overhead" is the
# same delta (plus percentage) for the telemetry-attached path, which
# the telemetry layer budgets at no more than 15%.
set -eu
cd "$(dirname "$0")"

out=BENCH_serving.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# No pipelines around go test: a pipe would launder its exit status
# through tee and set -e would let a failed benchmark run emit an
# empty-but-valid JSON file.
run_bench() {
	go test -run '^$' -bench "$1" -benchtime=1s "$2" >> "$raw" 2>&1 ||
		{ cat "$raw" >&2; echo "bench.sh: $2 benchmarks failed" >&2; exit 1; }
}
run_bench 'BenchmarkNodeSessionSubmit' ./internal/serving
run_bench 'BenchmarkRouterDecide|BenchmarkRouteLeastQueued/pruned-8000' ./internal/cluster
run_bench 'BenchmarkScenarioReplay' ./internal/scenario
run_bench 'BenchmarkPlaneSnapshotUnderLoad' ./internal/ctl
cat "$raw"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gover="$(go env GOVERSION)" '
/^Benchmark/ {
	name = $1
	iters = $2
	# Normalize away only the GOMAXPROCS suffix on the top-level submit
	# benchmarks (sub-benchmark names like pruned-8000 keep theirs) so
	# the derived overhead row finds them on any machine.
	norm = name
	if (norm ~ /^BenchmarkNodeSessionSubmit(Autoscale|Hetero|Traced)?(-[0-9]+)?$/)
		sub(/-[0-9]+$/, "", norm)
	metrics = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		v = $i; u = $(i + 1)
		metrics = metrics sprintf("%s\"%s\": %s", (metrics == "" ? "" : ", "), u, v)
		vals[norm "|" u] = v
	}
	rows[n++] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, %s}", name, iters, metrics)
}
END {
	plain = vals["BenchmarkNodeSessionSubmit|ns/req"]
	scaled = vals["BenchmarkNodeSessionSubmitAutoscale|ns/req"]
	if (plain != "" && scaled != "")
		rows[n++] = sprintf("    {\"name\": \"autoscale-tick-overhead\", \"iterations\": 0, \"ns/req\": %.2f}",
			scaled - plain)
	traced = vals["BenchmarkNodeSessionSubmitTraced|ns/req"]
	if (plain != "" && traced != "")
		rows[n++] = sprintf("    {\"name\": \"trace-overhead\", \"iterations\": 0, \"ns/req\": %.2f, \"pct\": %.2f}",
			traced - plain, (traced - plain) / plain * 100)
	printf "{\n  \"suite\": \"serving\",\n  \"generated\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", date, gover
	for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i < n - 1 ? "," : "")
	printf "  ]\n}\n"
}' "$raw" > "$out"

echo "bench.sh: wrote $out"
