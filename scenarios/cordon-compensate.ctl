# cordon-compensate.ctl — premactl command script (not a scenario file:
# the .ctl extension keeps it out of the premasim corpus loop).
#
# Replay with:
#
#   premactl -script scenarios/cordon-compensate.ctl -timescale 0 \
#            -seed 7 -segment 25ms -min-npus 2 -max-npus 4 -load 2 \
#            -name cordon-compensate -report-json run.json
#
# Traffic ramps, npu1 is cordoned out of rotation mid-ramp, the
# queue-depth scaler compensates with a fresh backend, the cordon
# lifts, and the session seals into an exportable run report. The
# transcript and the report are byte-identical on every replay — ci.sh
# runs this script twice and diffs both artifacts.
@10ms  snapshot
@25ms  load 3
@30ms  cordon npu1
@45ms  snapshot
@60ms  uncordon npu1
@80ms  report
@100ms quit
