package prema

import (
	"testing"
)

// TestSuiteRunSharesCache proves the Suite pillar: one cache spans every
// experiment a Suite runs, so overlapping sweeps answer from memory on
// the second encounter — which the per-call RunExperiment shape could
// never do.
func TestSuiteRunSharesCache(t *testing.T) {
	suite, err := NewSuite(SuiteOptions{Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	first, err := suite.Run("fig11")
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 || first[0].ID != "fig11" || len(first[0].Tables) == 0 {
		t.Fatalf("unexpected result shape: %+v", first)
	}
	cold := suite.Simulations()
	if cold == 0 {
		t.Fatal("cold run did not simulate")
	}
	second, err := suite.Run("fig11")
	if err != nil {
		t.Fatal(err)
	}
	if got := suite.Simulations(); got != cold {
		t.Errorf("repeat run simulated %d extra times; the cache should answer", got-cold)
	}
	if suite.CacheStats().Hits == 0 {
		t.Error("repeat run recorded no cache hits")
	}
	for i := range first[0].Tables {
		if first[0].Tables[i].Text != second[0].Tables[i].Text {
			t.Error("cached rerun diverges from cold run")
		}
		if first[0].Tables[i].CSV == "" {
			t.Error("CSV rendering empty")
		}
	}
}

// TestSuiteDiskCache proves SuiteOptions.CacheDir: a second process
// (modelled by a second Suite) renders byte-identical tables without
// simulating at all.
func TestSuiteDiskCache(t *testing.T) {
	dir := t.TempDir()
	cold, err := NewSuite(SuiteOptions{Runs: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	first, err := cold.Run("fig11")
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	warm, err := NewSuite(SuiteOptions{Runs: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	second, err := warm.Run("fig11")
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Simulations(); got != 0 {
		t.Errorf("warm suite simulated %d times; disk cache should answer everything", got)
	}
	for i := range first[0].Tables {
		if first[0].Tables[i].Text != second[0].Tables[i].Text {
			t.Error("warm table bytes diverge from cold")
		}
	}
}

// TestSystemBoundSuite proves a customized System hands its
// configuration to its Suite: the experiments run on the System's NPU,
// and the disk-cache fingerprint separates it from the default
// configuration's cache.
func TestSystemBoundSuite(t *testing.T) {
	cfg := DefaultNPUConfig()
	cfg.SW, cfg.SH = 64, 64
	sys := newSystem(t, WithNPU(cfg))
	dir := t.TempDir()

	suite, err := sys.NewSuite(SuiteOptions{Runs: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := suite.Run("fig11"); err != nil {
		t.Fatal(err)
	}
	if suite.Simulations() == 0 {
		t.Fatal("bound suite did not simulate")
	}
	if err := suite.Close(); err != nil {
		t.Fatal(err)
	}

	// The default configuration must not see the 64x64 cache.
	other, err := NewSuite(SuiteOptions{Runs: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Run("fig11"); err != nil {
		t.Fatal(err)
	}
	if other.Simulations() == 0 {
		t.Error("default suite was answered from a different configuration's disk cache")
	}
}

// TestSuiteErrors covers the suite error paths and the deprecated shim.
func TestSuiteErrors(t *testing.T) {
	suite, err := NewSuite(SuiteOptions{Runs: 2, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if suite.Cached() {
		t.Error("NoCache suite reports an enabled cache")
	}
	if _, err := suite.Run("nope"); err == nil {
		t.Error("unknown experiment should error")
	}
	if got := suite.CacheStats(); got.Entries != 0 {
		t.Errorf("cacheless suite reports %d entries", got.Entries)
	}
	if cached, err := NewSuite(SuiteOptions{}); err != nil || !cached.Cached() {
		t.Errorf("zero-value options should enable the cache: %v", err)
	}
	if _, err := NewSuite(SuiteOptions{NoCache: true, CacheDir: t.TempDir()}); err == nil {
		t.Error("NoCache with CacheDir should be rejected")
	}
	if len(Experiments()) < 15 {
		t.Errorf("only %d experiments exposed", len(Experiments()))
	}
	if _, err := RunExperiment("nope"); err == nil {
		t.Error("unknown experiment through the shim should error")
	}
}
