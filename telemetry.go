package prema

// telemetry.go is the observability surface of the facade: a Telemetry
// handle (internal/telemetry's tracer + tick recorder pair) attaches to
// node sessions (NodeSessionConfig.Trace), control planes
// (ControlPlaneConfig.Trace) and scenario runs (RunScenarioTraced).
// Both halves run on the virtual stream clock, so telemetry output is
// as deterministic as the run it observes: the same seed and scenario
// replay a byte-identical event stream and metric series, and a session
// with no handle attached runs byte-identically to one predating the
// telemetry layer.

import "repro/internal/telemetry"

type (
	// Telemetry is the observability handle: an optional per-request
	// event Tracer and an optional tick-sampled metrics Recorder. Either
	// half may be nil to enable just the other.
	Telemetry = telemetry.Trace
	// TraceEvent is one per-request lifecycle event (submit, route,
	// stretch, reclaim, complete) on the virtual clock.
	TraceEvent = telemetry.Event
	// TraceSummary is the derived per-request trace digest: completion
	// counts, latency decompositions and the worst requests.
	TraceSummary = telemetry.TraceSummary
	// RequestTrace is one request's per-trace view inside a summary.
	RequestTrace = telemetry.RequestTrace
	// TickSample is one autoscale-tick fleet metrics sample: per-NPU and
	// per-tier gauges plus fleet counters.
	TickSample = telemetry.TickSample
)

// NewTelemetry builds a telemetry handle with both halves attached at
// the default ring capacities.
func NewTelemetry() *Telemetry { return telemetry.New() }

// SummarizeTrace derives the trace digest from a merged event stream,
// keeping the topK worst-latency requests (topK <= 0 keeps 5).
func SummarizeTrace(events []TraceEvent, topK int) TraceSummary {
	return telemetry.Summarize(events, topK)
}

// EncodeTraceJSONL renders a merged event stream and a tick-sample
// series as sorted JSONL — one JSON object per line, events and tick
// samples interleaved by cycle (the premasim -trace-jsonl format). The
// output is byte-deterministic for a deterministic run.
func EncodeTraceJSONL(events []TraceEvent, ticks []TickSample) ([]byte, error) {
	return telemetry.EncodeJSONL(events, ticks)
}
