package prema

import (
	"strings"
	"testing"
)

// TestParseHelpers covers the typed-identifier parse paths.
func TestParseHelpers(t *testing.T) {
	if p, err := ParsePolicy("PREMA"); err != nil || p != PREMA {
		t.Errorf("ParsePolicy(PREMA) = %v, %v", p, err)
	}
	if _, err := ParsePolicy("prema"); err == nil {
		t.Error("policy labels are case-sensitive; lowercase should error")
	}
	if _, err := ParsePolicy(""); err == nil {
		t.Error("empty policy should error")
	}
	if m, err := ParseMechanism("static-kill"); err != nil || m != StaticKill {
		t.Errorf("ParseMechanism(static-kill) = %v, %v", m, err)
	}
	if m, err := ParseMechanism("static"); err != nil || m != Mechanism("static") {
		t.Errorf("alias static should parse: %v, %v", m, err)
	}
	if _, err := ParseMechanism("warp"); err == nil {
		t.Error("unknown mechanism should error")
	}
	if _, err := ParseMechanism(""); err == nil {
		t.Error("empty mechanism should error in parse context")
	}
	if r, err := ParseRouting("least-work"); err != nil || r != LeastWork {
		t.Errorf("ParseRouting(least-work) = %v, %v", r, err)
	}
	if _, err := ParseRouting("warp-drive"); err == nil {
		t.Error("unknown routing should error")
	}
}

// TestSchedulerValidation pins the eager-rejection bugfix: unknown
// labels and the mechanism-on-non-preemptive mistake fail at Validate
// instead of being silently ignored.
func TestSchedulerValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Scheduler
		want string
	}{
		{"unknown policy", Scheduler{Policy: "NOPE"}, "unknown policy"},
		{"empty policy", Scheduler{}, "empty policy"},
		{"unknown mechanism", Scheduler{Policy: SJF, Preemptive: true, Mechanism: "bogus"},
			"unknown preemption mechanism"},
		{"mechanism without preemptive", Scheduler{Policy: PREMA, Mechanism: Dynamic},
			"non-preemptive"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.cfg)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	ok := []Scheduler{
		{Policy: FCFS},
		{Policy: PREMA, Preemptive: true},
		{Policy: PREMA, Preemptive: true, Mechanism: DynamicKill},
		{Policy: HPF, Preemptive: true, Mechanism: StaticCheckpoint},
	}
	for _, cfg := range ok {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate rejected valid %+v: %v", cfg, err)
		}
	}
}

// TestSimulateRejectsInvalidSchedulers proves the validation actually
// gates the simulation entry points.
func TestSimulateRejectsInvalidSchedulers(t *testing.T) {
	sys := newSystem(t)
	tasks, err := sys.Workload(WorkloadSpec{Tasks: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Simulate(Scheduler{Policy: "NOPE"}, tasks); err == nil {
		t.Error("unknown policy should error")
	}
	if _, err := sys.Simulate(Scheduler{Policy: SJF, Preemptive: true,
		Mechanism: "bogus"}, tasks); err == nil {
		t.Error("unknown mechanism should error")
	}
	if _, err := sys.Simulate(Scheduler{Policy: SJF, Mechanism: StaticKill}, tasks); err == nil {
		t.Error("mechanism on a non-preemptive run should error")
	}
	if _, err := sys.SimulateNode(Node{NPUs: 2, Routing: "warp-drive",
		Local: Scheduler{Policy: FCFS}}, tasks); err == nil {
		t.Error("unknown routing should error")
	}
	if _, err := sys.SimulateNode(Node{NPUs: 0,
		Local: Scheduler{Policy: FCFS}}, tasks); err == nil {
		t.Error("non-positive NPU count should error")
	}
	if _, err := sys.SimulateNode(Node{NPUs: 2,
		Local: Scheduler{Policy: FCFS, Mechanism: StaticKill}}, tasks); err == nil {
		t.Error("node-local mechanism without preemptive should error")
	}
	if _, err := sys.Open(SessionConfig{
		Scheduler: Scheduler{Policy: FCFS, Mechanism: Dynamic}}); err == nil {
		t.Error("session with mechanism on non-preemptive scheduler should error")
	}
}

// TestRegistryListings sanity-checks the label listings the CLI help
// builds on.
func TestRegistryListings(t *testing.T) {
	pol := strings.Join(Policies(), ",")
	for _, want := range []string{"FCFS", "RRB", "HPF", "TOKEN", "SJF", "PREMA"} {
		if !strings.Contains(pol, want) {
			t.Errorf("policy listing missing %s: %s", want, pol)
		}
	}
	mech := strings.Join(Mechanisms(), ",")
	for _, want := range []string{"static-checkpoint", "static-kill", "static-drain",
		"dynamic", "dynamic-kill"} {
		if !strings.Contains(mech, want) {
			t.Errorf("mechanism listing missing %s: %s", want, mech)
		}
	}
	est := strings.Join(Estimators(), ",")
	for _, want := range []string{"analytic", "oracle"} {
		if !strings.Contains(est, want) {
			t.Errorf("estimator listing missing %s: %s", want, est)
		}
	}
}
