package prema

// nodesession.go is the node-level streaming surface: System.OpenNode
// returns a NodeSession — the Section II-C deployment model (a router in
// front of multiple preemptible NPUs, each with its own local scheduler)
// as a long-lived endpoint rather than the batch SimulateNode. Requests
// stream through the node's routing policy into per-NPU serving
// sessions; statistics are incremental and answer both per NPU and
// aggregated across the node. Closed-loop client populations
// (OfferClients, also available on the single-NPU Session) sweep
// concurrency instead of offered load: each client keeps one request in
// flight and releases the next only when the previous completes.

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/dnn"
	"repro/internal/serving"
	"repro/internal/workload"
)

// NodeSessionConfig parameterizes a node-level serving session.
type NodeSessionConfig struct {
	// NPUs is the accelerator count in the node (>= 1).
	NPUs int
	// Routing selects the router dispatching requests to NPUs; empty
	// defaults to RoundRobin.
	Routing Routing
	// Scheduler is the NPU-local scheduling configuration every backend
	// runs.
	Scheduler Scheduler
	// Models restricts the request mix OfferLoad and OfferClients draw
	// from (labels per System.Models); empty serves the eight-model
	// evaluation suite. Submit is not restricted.
	Models []string
	// Window is the per-NPU dynamic batching window (0 disables
	// batching; closed-loop clients require 0).
	Window time.Duration
	// MaxBatch caps the fused batch size (default 16).
	MaxBatch int
	// Horizon is the reference horizon for the warm-up cut; 0 derives
	// it from the latest submitted arrival per NPU.
	Horizon time.Duration
	// WarmupFraction of the horizon is excluded from latency statistics
	// (default 0.2).
	WarmupFraction float64
	// Seed drives the session's request sampling deterministically; 0
	// selects a fixed default.
	Seed uint64
	// Autoscale attaches an SLO-driven scaling policy: the fleet grows
	// and shrinks between the configured bounds as the stream advances,
	// NPUs is the starting size, and Stats gains a scaling timeline.
	// nil keeps the fleet fixed. Closed-loop clients (OfferClients) pin
	// to their NPU and are rejected on autoscaling nodes.
	Autoscale *AutoscaleConfig
	// Fleet is an optional weighted hardware-tier template
	// ("70%:fast,30%:slow"): the node's backends split across the
	// named tiers, a tier's clock derates by its factor (builtin slow
	// = 2x service time), routing weighs backends in normalized
	// completion time, and scale-ups pick the tier furthest below its
	// weight. Closed-loop clients (OfferClients) bypass the router and
	// are rejected on tiered nodes. Empty keeps the fleet homogeneous.
	Fleet string
	// Trace attaches a telemetry handle (NewTelemetry): per-request
	// lifecycle events through the Tracer half, tick-sampled fleet
	// metrics through the Recorder half (samples land on the autoscale
	// tick, so they require Autoscale). nil disables both; a session
	// without a handle runs byte-identically to one predating the
	// telemetry layer.
	Trace *Telemetry
}

// NodeSessionStats are a node session's steady-state statistics: the
// aggregate over every NPU's measured requests plus each NPU's own
// view. The aggregate throughput window is the slowest NPU's makespan.
type NodeSessionStats struct {
	// SessionStats is the node-wide aggregate over the union of every
	// NPU's measured requests.
	SessionStats
	// PerNPU holds each accelerator's statistics over its routed share —
	// including backends a scale-down retired. An NPU that served
	// nothing reports a zero entry.
	PerNPU []SessionStats
	// Scaling is the autoscaler's timeline view; nil unless the session
	// was opened with an AutoscaleConfig.
	Scaling *ScalingStats
	// Tiers is the per-hardware-tier statistics breakdown, in template
	// order; nil on homogeneous fleets.
	Tiers []TierStats
}

// TierStats is one hardware tier's slice of the node statistics.
type TierStats = serving.TierStats

// ScalingStats is an autoscaled node session's fleet timeline.
type ScalingStats struct {
	// Events is the fleet timeline in stream milliseconds: an anchor at
	// 0 with the initial count, then one entry per applied change.
	Events []ScaleEventMS
	// SLOLatencyMS is the configured P95 target in milliseconds.
	SLOLatencyMS float64
	// SLOViolationFrac is the fraction of measured requests whose
	// realized latency exceeded the SLO.
	SLOViolationFrac float64
	// MeanNPUs is the time-weighted mean active fleet size over the
	// run's makespan.
	MeanNPUs float64
	// PeakNPUs is the largest active fleet size reached.
	PeakNPUs int
}

// ScaleEventMS is one applied fleet change on the stream clock.
type ScaleEventMS struct {
	// AtMS is the evaluation tick the change applied at, in stream
	// milliseconds.
	AtMS float64
	// Delta is the applied change in active backends (0 only on the
	// initial anchor).
	Delta int
	// NPUs is the active fleet size after the change.
	NPUs int
}

// NodeSession is an open node-level serving endpoint over one System.
// NodeSessions are not safe for concurrent use.
type NodeSession struct {
	sys    *System
	inner  *serving.NodeSession
	rng    *rand.Rand
	models []string
	nextID int
}

// OpenNode validates the configuration and opens a node-level serving
// session: one streaming router in front of NPUs independent serving
// backends, each running the configured local scheduler.
func (s *System) OpenNode(cfg NodeSessionConfig) (*NodeSession, error) {
	if cfg.NPUs <= 0 {
		return nil, fmt.Errorf("prema: non-positive NPU count %d", cfg.NPUs)
	}
	if err := cfg.Scheduler.Validate(); err != nil {
		return nil, err
	}
	routing, err := cfg.Routing.toCluster()
	if err != nil {
		return nil, err
	}
	for _, name := range cfg.Models {
		if _, err := dnn.ByName(name); err != nil {
			return nil, err
		}
	}
	var scale *serving.AutoscaleConfig
	if cfg.Autoscale != nil {
		if err := cfg.Autoscale.Validate(); err != nil {
			return nil, err
		}
		scale = cfg.Autoscale.toServing()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5E55
	}
	var tiers []serving.Tier
	if cfg.Fleet != "" {
		if tiers, err = serving.FleetFromTemplate(s.opt.NPU, cfg.Fleet); err != nil {
			return nil, err
		}
	}
	srv := serving.NewServer(s.opt.NPU, s.opt.Sched, s.gen)
	inner, err := srv.OpenNode(serving.NodeConfig{
		NPUs:      cfg.NPUs,
		Fleet:     tiers,
		Routing:   routing,
		Autoscale: scale,
		Trace:     cfg.Trace,
		Session: serving.SessionConfig{
			Policy:         string(cfg.Scheduler.Policy),
			Preemptive:     cfg.Scheduler.Preemptive,
			Selector:       string(cfg.Scheduler.mechanism()),
			Window:         cfg.Window,
			MaxBatch:       cfg.MaxBatch,
			Horizon:        cfg.Horizon,
			WarmupFraction: cfg.WarmupFraction,
		},
	})
	if err != nil {
		return nil, err
	}
	return &NodeSession{
		sys:    s,
		inner:  inner,
		rng:    workload.RNGFor(seed, 0),
		models: cfg.Models,
	}, nil
}

// NPUs reports the node size.
func (ns *NodeSession) NPUs() int { return ns.inner.NPUs() }

// Submit appends one request to the node's stream, routing it the
// moment it arrives. Routing is incremental, so requests must be
// submitted in nondecreasing arrival order.
func (ns *NodeSession) Submit(req Request) error {
	batch := req.Batch
	if batch <= 0 {
		batch = 1
	}
	prio := req.Priority
	if prio == 0 {
		prio = Medium
	}
	if req.Arrival < 0 {
		return fmt.Errorf("prema: negative arrival %v", req.Arrival)
	}
	inst, err := ns.sys.gen.InstanceByName(ns.nextID, req.Model, batch, prio,
		ns.sys.opt.NPU.Cycles(req.Arrival), ns.rng)
	if err != nil {
		return err
	}
	if err := ns.inner.Submit(inst); err != nil {
		return err
	}
	ns.nextID++
	return nil
}

// OfferLoad drives the node's open-loop arrival process: Poisson
// arrivals at the given offered utilization over the horizon, routed
// request-by-request through the node's routing policy. Load is
// normalized to a single NPU's capacity, so a node of N NPUs saturates
// near load N. Requests arrive at batch size 1 (batching is the
// session's job; see NodeSessionConfig.Window). It returns how many
// requests arrived.
func (ns *NodeSession) OfferLoad(load float64, horizon time.Duration) (int, error) {
	n, err := ns.inner.Offer(serving.Spec{
		Horizon:        horizon,
		OfferedLoad:    load,
		Models:         ns.models,
		BatchSizes:     []int{1},
		WarmupFraction: 0, // warm-up is the session's, not the spec's
	}, ns.rng)
	if err != nil {
		return 0, err
	}
	ns.nextID += n
	return n, nil
}

// OfferRamp drives a piecewise-constant offered-load profile — the
// diurnal/burst scenario autoscaling exists for. Segment i offers
// loads[i] (normalized to a single NPU's capacity) over its own
// segment-length window, chained in arrival order through the node's
// router; a segment whose sampled window is empty is skipped. Requests
// arrive at batch size 1. It returns how many requests arrived across
// the whole ramp.
func (ns *NodeSession) OfferRamp(loads []float64, segment time.Duration) (int, error) {
	n, err := ns.inner.OfferRamp(serving.Spec{
		Horizon:        segment,
		Models:         ns.models,
		BatchSizes:     []int{1},
		WarmupFraction: 0, // warm-up is the session's, not the spec's
	}, loads, ns.rng)
	if err != nil {
		return 0, err
	}
	ns.nextID += n
	return n, nil
}

// OfferClients drives a closed-loop client population across the node:
// each client pins to an NPU (round-robin affinity) and keeps exactly
// one request in flight, releasing the next one an exponential think
// time (mean think) after the previous completes — sweeping concurrency
// instead of offered load. No request is released at or after the
// horizon. It returns how many requests were realized.
func (ns *NodeSession) OfferClients(clients int, think, horizon time.Duration) (int, error) {
	n, err := ns.inner.OfferClients(serving.ClientSpec{
		Clients: clients,
		Think:   think,
		Horizon: horizon,
		Models:  ns.models,
	}, ns.rng)
	if err != nil {
		return 0, err
	}
	ns.nextID += n
	return n, nil
}

// Pending reports how many requests have been submitted node-wide.
func (ns *NodeSession) Pending() int { return ns.inner.Pending() }

// Routed reports how many requests each NPU holds.
func (ns *NodeSession) Routed() []int { return ns.inner.Routed() }

// Stats computes the node's steady-state statistics so far: aggregate
// plus per-NPU views. Stats is incremental — each NPU re-simulates only
// if its routed stream changed.
func (ns *NodeSession) Stats() (NodeSessionStats, error) {
	st, err := ns.inner.Stats()
	if err != nil {
		return NodeSessionStats{}, err
	}
	return ns.flattenNodeStats(st), nil
}

// Drain computes final statistics and seals the node session against
// further submissions; Stats remains callable until Close.
func (ns *NodeSession) Drain() (NodeSessionStats, error) {
	st, err := ns.inner.Drain()
	if err != nil {
		return NodeSessionStats{}, err
	}
	return ns.flattenNodeStats(st), nil
}

// Close seals the node session. Close is idempotent.
func (ns *NodeSession) Close() error { return ns.inner.Close() }

// TraceEvents assembles the node's merged per-request trace: the
// recorded lifecycle events plus one completion event per simulated
// request, cycle-sorted and sequence-stamped. It errors unless the
// session was opened with a Telemetry handle whose Tracer is attached.
func (ns *NodeSession) TraceEvents() ([]TraceEvent, error) {
	return ns.inner.TraceEvents()
}

func (ns *NodeSession) flattenNodeStats(st serving.NodeStats) NodeSessionStats {
	out := NodeSessionStats{
		SessionStats: flattenStats(st.BatchStats),
		PerNPU:       make([]SessionStats, len(st.PerNPU)),
	}
	for i, per := range st.PerNPU {
		out.PerNPU[i] = flattenStats(per)
	}
	if st.Scaling != nil {
		cfg := ns.sys.opt.NPU
		sc := &ScalingStats{
			Events:           make([]ScaleEventMS, len(st.Scaling.Events)),
			SLOLatencyMS:     st.Scaling.SLOLatencyMS,
			SLOViolationFrac: st.Scaling.SLOViolationFrac,
			MeanNPUs:         st.Scaling.MeanNPUs,
			PeakNPUs:         st.Scaling.PeakNPUs,
		}
		for i, e := range st.Scaling.Events {
			sc.Events[i] = ScaleEventMS{AtMS: cfg.Millis(e.Cycle), Delta: e.Delta, NPUs: e.NPUs}
		}
		out.Scaling = sc
	}
	out.Tiers = st.Tiers
	return out
}
