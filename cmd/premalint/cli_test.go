package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestListAnalyzers checks -list names every analyzer with its
// invariant, and exits zero without linting anything.
func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"determinism", "errdrop", "facadeimport", "registryonce", "statecopy", "timerinsim"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

// TestSeededViolation proves the tripwire trips: the seeded-violation
// fixture must produce a determinism finding and a non-zero exit.
func TestSeededViolation(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"../../internal/lint/testdata/broken"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout: %s stderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[determinism]") ||
		!strings.Contains(out.String(), "wall clock") {
		t.Errorf("expected a determinism wall-clock finding, got:\n%s", out.String())
	}
}

// TestOnlyFilter checks -only restricts the run: the broken fixture's
// only violation is a determinism one, so an errdrop-only run is
// clean.
func TestOnlyFilter(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "errdrop", "../../internal/lint/testdata/broken"}, &out, &errb); code != 0 {
		t.Fatalf("-only errdrop exit = %d; stdout: %s stderr: %s", code, out.String(), errb.String())
	}
	var out2, errb2 bytes.Buffer
	if code := run([]string{"-only", "determinism", "../../internal/lint/testdata/broken"}, &out2, &errb2); code != 1 {
		t.Fatalf("-only determinism exit = %d, want 1", code)
	}
}

// TestOnlyUnknownAnalyzer checks flag validation: naming a nonexistent
// analyzer is a usage error, not a silent no-op.
func TestOnlyUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr should name the unknown analyzer: %s", errb.String())
	}
}

// TestBadFlag checks flag-parse failures exit 2.
func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestRepoClean is the acceptance invariant: the repository itself
// lints clean (every real finding fixed or explicitly suppressed with
// a reason).
func TestRepoClean(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("premalint ./... exit = %d:\n%s%s", code, out.String(), errb.String())
	}
}
