// premalint runs the repository's domain-invariant analyzers (package
// repro/internal/lint) over Go packages and exits non-zero on any
// unsuppressed finding. It is the CI tripwire for the conventions the
// reproduction's guarantees rest on: replay determinism, facade-only
// consumers, init-time registries, must-check errors, and no-copy
// state structs.
//
// Usage:
//
//	premalint [-list] [-only analyzer[,analyzer]] [packages]
//
// Package arguments are directories; "dir/..." lints the whole tree
// under dir (skipping testdata, like the go tool). With no arguments
// it lints the enclosing module ("./...").
//
// Findings can be suppressed per line with
//
//	//premalint:ignore <analyzer> <reason>
//
// on the offending line or the line above; premalint -list shows the
// analyzer names the directive accepts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint" //premalint:ignore facadeimport the lint CLI is developer tooling over the analysis framework, not a simulation consumer
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses flags, loads the
// requested packages and prints findings, returning the process exit
// code (0 clean, 1 findings, 2 usage/load errors).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("premalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the available analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			found := false
			for _, a := range analyzers {
				if a.Name == name {
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(stderr, "premalint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			keep[name] = true
		}
		var filtered []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
			}
		}
		analyzers = filtered
	}

	targets := fs.Args()
	if len(targets) == 0 {
		targets = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "premalint: %v\n", err)
		return 2
	}
	modRoot, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "premalint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintf(stderr, "premalint: %v\n", err)
		return 2
	}

	var pkgs []*lint.Package
	seen := map[string]bool{}
	add := func(loaded ...*lint.Package) {
		for _, p := range loaded {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	for _, target := range targets {
		dir, recursive := target, false
		if rest, ok := strings.CutSuffix(target, "/..."); ok {
			dir, recursive = rest, true
			if dir == "" || dir == "." {
				dir = modRoot
			}
		}
		if recursive {
			walked, err := loader.Walk(dir)
			if err != nil {
				fmt.Fprintf(stderr, "premalint: %s: %v\n", target, err)
				return 2
			}
			add(walked...)
			continue
		}
		p, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "premalint: %s: %v\n", target, err)
			return 2
		}
		add(p)
	}

	findings := lint.Lint(pkgs, analyzers)
	for _, f := range findings {
		f.Pos.Filename = relPath(cwd, f.Pos.Filename)
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "premalint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// relPath shortens absolute finding paths relative to the working
// directory when possible.
func relPath(base, path string) string {
	rel, err := filepath.Rel(base, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
