package main

// cli.go is premactl's flag surface, extracted into a testable
// parseCLI mirroring premasim's: every flag parses into one cli struct
// and misconfigured combinations fail eagerly with targeted errors.

import (
	"flag"
	"fmt"
	"strings"
	"time"

	prema "repro"
)

// cli holds the parsed command line.
type cli struct {
	npus       int
	routing    string
	policy     string
	preemptive bool
	mechanism  string
	autoscale  string
	slo        time.Duration
	minNPUs    int
	maxNPUs    int
	fleet      string
	models     string
	seed       int
	segment    time.Duration
	step       time.Duration
	timescale  float64
	load       float64
	script     string
	listen     string
	trace      bool
	reportJSON string
	reportHTML string
	name       string

	// set records which flags the user passed explicitly.
	set map[string]bool
}

// parseCLI parses and validates the command line. It returns
// flag.ErrHelp unwrapped so main can exit 0 on -h.
func parseCLI(args []string) (*cli, error) {
	c := &cli{}
	fs := flag.NewFlagSet("premactl", flag.ContinueOnError)
	fs.IntVar(&c.npus, "npus", 2, "initial fleet size")
	fs.StringVar(&c.routing, "routing", "least-work",
		"cluster routing policy: round-robin|least-queued|least-work")
	fs.StringVar(&c.policy, "policy", "PREMA",
		"NPU-local scheduling policy: "+strings.Join(prema.Policies(), "|"))
	fs.BoolVar(&c.preemptive, "preemptive", true, "enable the preemptible-NPU path")
	fs.StringVar(&c.mechanism, "mechanism", "dynamic",
		"preemption mechanism selector: "+strings.Join(prema.Mechanisms(), "|"))
	fs.StringVar(&c.autoscale, "autoscale", "queue-depth",
		"autoscaling policy ('' fixes the fleet): "+strings.Join(prema.Scalers(), "|"))
	fs.DurationVar(&c.slo, "slo", 8*time.Millisecond, "P95 latency SLO the autoscaler targets")
	fs.IntVar(&c.minNPUs, "min-npus", 1, "autoscaling fleet minimum")
	fs.IntVar(&c.maxNPUs, "max-npus", 8, "autoscaling fleet maximum")
	fs.StringVar(&c.fleet, "fleet", "",
		"weighted hardware-tier template, e.g. 70%:fast,30%:slow ('' keeps the fleet homogeneous)")
	fs.StringVar(&c.models, "models", "CNN-AN,CNN-GN,CNN-MN,RNN-SA",
		"comma-separated request mix ('' serves the full evaluation suite)")
	fs.IntVar(&c.seed, "seed", 0, "arrival seed (0 = the fixed default shared with scenarios)")
	fs.DurationVar(&c.segment, "segment", 20*time.Millisecond,
		"arrival-generation window; load changes apply at segment boundaries")
	fs.DurationVar(&c.step, "step", time.Millisecond, "clock-advance granularity")
	fs.Float64Var(&c.timescale, "timescale", 1,
		"virtual seconds per wall second (0 = no wall pacing: clock moves only under step/script)")
	fs.Float64Var(&c.load, "load", 1, "initial offered load per NPU-capacity")
	fs.StringVar(&c.script, "script", "",
		"command script to run instead of the REPL (@<time> <command> lines)")
	fs.StringVar(&c.listen, "listen", "",
		"serve the command API over HTTP on this address (e.g. :8080)")
	fs.BoolVar(&c.trace, "trace", false,
		"attach telemetry: the trace/metrics commands and /trace, /metrics endpoints read from it")
	fs.StringVar(&c.reportJSON, "report-json", "", "write the final run report as JSON to this file")
	fs.StringVar(&c.reportHTML, "report-html", "", "write the final run report as HTML to this file")
	fs.StringVar(&c.name, "name", "", "label for the run's report")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	c.set = map[string]bool{}
	fs.Visit(func(f *flag.Flag) { c.set[f.Name] = true })
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// validate rejects misconfigured flag combinations eagerly.
func (c *cli) validate() error {
	if c.npus < 1 {
		return fmt.Errorf("-npus must be at least 1")
	}
	if c.timescale < 0 {
		return fmt.Errorf("-timescale must be non-negative")
	}
	if c.load < 0 {
		return fmt.Errorf("-load must be non-negative")
	}
	if c.autoscale == "" && (c.set["slo"] || c.set["min-npus"] || c.set["max-npus"]) {
		return fmt.Errorf("-slo/-min-npus/-max-npus only apply to autoscaled fleets: drop -autoscale '' or the bound flags")
	}
	if c.set["script"] && c.script == "" {
		return fmt.Errorf("-script needs a file path")
	}
	return nil
}

// planeConfig assembles the facade configuration from the flags.
func (c *cli) planeConfig() (prema.ControlPlaneConfig, error) {
	policy, err := prema.ParsePolicy(c.policy)
	if err != nil {
		return prema.ControlPlaneConfig{}, err
	}
	sched := prema.Scheduler{Policy: policy, Preemptive: c.preemptive}
	if c.preemptive || c.set["mechanism"] {
		if sched.Mechanism, err = prema.ParseMechanism(c.mechanism); err != nil {
			return prema.ControlPlaneConfig{}, err
		}
	}
	routing, err := prema.ParseRouting(c.routing)
	if err != nil {
		return prema.ControlPlaneConfig{}, err
	}
	cfg := prema.ControlPlaneConfig{
		NPUs:      c.npus,
		Routing:   routing,
		Scheduler: sched,
		Seed:      uint64(c.seed),
		Segment:   c.segment,
		Step:      c.step,
		TimeScale: c.timescale,
		Load:      c.load,
		Name:      c.name,
		Fleet:     c.fleet,
	}
	if c.trace {
		cfg.Trace = prema.NewTelemetry()
	}
	if c.models != "" {
		for _, m := range strings.Split(c.models, ",") {
			if m = strings.TrimSpace(m); m != "" {
				cfg.Models = append(cfg.Models, m)
			}
		}
	}
	if c.autoscale != "" {
		cfg.Autoscale = &prema.AutoscaleConfig{
			Scaler: c.autoscale, SLO: c.slo,
			MinNPUs: c.minNPUs, MaxNPUs: c.maxNPUs,
		}
	}
	return cfg, nil
}
