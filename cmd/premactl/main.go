// Command premactl is the live control plane driver: an interactive
// REPL (or a timestamped command script) over an autoscaled NPU fleet
// whose deterministic stream clock advances against wall time at a
// configurable time-scale — pausable, single-steppable, observable via
// metrics snapshots, and exportable as a JSON/HTML run report.
//
// Usage:
//
//	premactl                                      # REPL at real time
//	premactl -timescale 0                         # REPL, manual stepping only
//	premactl -script session.ctl -timescale 0     # replay a scripted session
//	premactl -listen :8080                        # mirror the command API over HTTP
//	premactl -script s.ctl -report-json run.json -report-html run.html
//
// Commands are serialized into the clock loop between ticks, so the
// same command script at the same virtual timestamps replays
// byte-identically, and a scripted session is stat-identical to the
// equivalent declarative scenario run (premasim -scenario). Type `help`
// at the prompt for the command vocabulary.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	prema "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout))
}

// run is main's testable body; it returns the exit code.
func run(args []string, stdin *os.File, stdout *os.File) int {
	c, err := parseCLI(args)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return fail(err)
	}
	cfg, err := c.planeConfig()
	if err != nil {
		return fail(err)
	}
	sys, err := prema.NewSystem()
	if err != nil {
		return fail(err)
	}
	plane, err := sys.OpenControlPlane(cfg)
	if err != nil {
		return fail(err)
	}
	defer plane.Close() //premalint:ignore errdrop the report was already exported; teardown of a sealed plane has nothing left to corrupt

	if c.listen != "" {
		ln, err := net.Listen("tcp", c.listen)
		if err != nil {
			return fail(err)
		}
		defer ln.Close() //premalint:ignore errdrop closing the listener at exit; the sockets' fate no longer affects the run
		fmt.Fprintf(stdout, "premactl: command API on http://%s (/cmd?q=..., /snapshot, /report, /trace, /metrics)\n", ln.Addr())
		srv := &http.Server{Handler: plane.Handler()}
		go srv.Serve(ln) //premalint:ignore errdrop Serve returns ErrServerClosed on the exit path; the session's outcome is the plane's, not the mirror's
	}

	code := 0
	if c.script != "" {
		code = runScript(plane, c.script, stdout)
	} else {
		code = runREPL(plane, c, stdin, stdout)
	}
	if err := writeReports(plane, c); err != nil {
		return fail(err)
	}
	return code
}

// runScript replays a timestamped command script and prints the
// transcript (the byte-identical replay artifact).
func runScript(plane *prema.ControlPlane, path string, stdout *os.File) int {
	src, err := os.ReadFile(path)
	if err != nil {
		return fail(err)
	}
	transcript, err := plane.RunScript(string(src))
	fmt.Fprint(stdout, transcript)
	if err != nil {
		return fail(err)
	}
	return 0
}

// runREPL drives the interactive session: a Pace loop advances the
// clock at the configured time-scale while commands execute between
// virtual steps. EOF seals the session like `quit`.
func runREPL(plane *prema.ControlPlane, c *cli, stdin *os.File, stdout *os.File) int {
	go plane.Pace() //premalint:ignore errdrop Pace's error resurfaces through plane.Err after the loop; the REPL checks it on exit
	fmt.Fprintf(stdout, "premactl: %d NPUs, timescale %gx, load %g — `help` lists commands\n",
		c.npus, c.timescale, c.load)
	sc := bufio.NewScanner(stdin)
	for !plane.Done() {
		fmt.Fprintf(stdout, "premactl@%.2fms> ", plane.NowMS())
		if !sc.Scan() {
			fmt.Fprintln(stdout)
			break
		}
		out, err := plane.Exec(sc.Text())
		if err != nil {
			fmt.Fprintf(stdout, "error: %v\n", err)
			continue
		}
		if out != "" {
			fmt.Fprintln(stdout, out)
		}
	}
	if !plane.Done() {
		if _, err := plane.Exec("quit"); err != nil {
			return fail(err)
		}
	}
	if err := plane.Err(); err != nil {
		return fail(err)
	}
	return 0
}

// writeReports exports the run report in the requested forms.
func writeReports(plane *prema.ControlPlane, c *cli) error {
	rep := plane.Report()
	if c.reportJSON != "" {
		js, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(c.reportJSON, append(js, '\n'), 0o644); err != nil {
			return err
		}
	}
	if c.reportHTML != "" {
		page, err := rep.HTML()
		if err != nil {
			return err
		}
		if err := os.WriteFile(c.reportHTML, page, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "premactl:", err)
	return 1
}
