package main

import (
	"os"
	"strings"
	"testing"
	"time"
)

// TestParseCLIMatrix locks in the flag rules: which command lines
// parse, which fail eagerly, and with what message.
func TestParseCLIMatrix(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of the error; "" means must succeed
	}{
		{name: "defaults", args: nil},
		{name: "scripted ci run", args: []string{"-script", "s.ctl", "-timescale", "0"}},
		{name: "fixed fleet", args: []string{"-autoscale", "", "-npus", "3"}},
		{name: "tiered fleet", args: []string{"-fleet", "70%:fast,30%:slow", "-npus", "10"}},
		{name: "full surface", args: []string{
			"-npus", "2", "-routing", "round-robin", "-policy", "FCFS", "-preemptive=false",
			"-autoscale", "queue-depth", "-slo", "6ms", "-min-npus", "2", "-max-npus", "6",
			"-seed", "9", "-segment", "25ms", "-step", "500us", "-timescale", "4",
			"-load", "2.5", "-listen", ":0", "-report-json", "r.json", "-report-html", "r.html",
			"-name", "ops-drill"}},

		{name: "zero npus", args: []string{"-npus", "0"},
			wantErr: "-npus must be at least 1"},
		{name: "negative timescale", args: []string{"-timescale", "-1"},
			wantErr: "-timescale must be non-negative"},
		{name: "negative load", args: []string{"-load", "-0.5"},
			wantErr: "-load must be non-negative"},
		{name: "slo without autoscale", args: []string{"-autoscale", "", "-slo", "5ms"},
			wantErr: "only apply to autoscaled fleets"},
		{name: "bounds without autoscale", args: []string{"-autoscale", "", "-min-npus", "2"},
			wantErr: "only apply to autoscaled fleets"},
		{name: "empty script path", args: []string{"-script", ""},
			wantErr: "-script needs a file path"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := parseCLI(tc.args)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseCLI(%v) = %v, want success", tc.args, err)
				}
				if c == nil {
					t.Fatal("nil cli on success")
				}
				return
			}
			if err == nil {
				t.Fatalf("parseCLI(%v) succeeded, want error containing %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseCLI(%v) = %q, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestPlaneConfig checks the flag-to-facade translation: models split,
// autoscale attachment, and the fixed-fleet form.
func TestPlaneConfig(t *testing.T) {
	c, err := parseCLI([]string{"-models", "CNN-AN, RNN-SA", "-slo", "6ms", "-segment", "25ms"})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := c.planeConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Models) != 2 || cfg.Models[0] != "CNN-AN" || cfg.Models[1] != "RNN-SA" {
		t.Errorf("models = %v", cfg.Models)
	}
	if cfg.Autoscale == nil || cfg.Autoscale.SLO != 6*time.Millisecond {
		t.Errorf("autoscale = %+v", cfg.Autoscale)
	}
	if cfg.Segment != 25*time.Millisecond {
		t.Errorf("segment = %v", cfg.Segment)
	}

	c, err = parseCLI([]string{"-fleet", "70%:fast,30%:slow"})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = c.planeConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Fleet != "70%:fast,30%:slow" {
		t.Errorf("fleet = %q", cfg.Fleet)
	}

	c, err = parseCLI([]string{"-autoscale", "", "-models", ""})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = c.planeConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Autoscale != nil {
		t.Errorf("fixed fleet grew an autoscaler: %+v", cfg.Autoscale)
	}
	if cfg.Models != nil {
		t.Errorf("empty -models should serve the full suite, got %v", cfg.Models)
	}
}

// TestScriptedRun drives the whole binary body over a temp script and
// checks the replay artifacts land on disk deterministically.
func TestScriptedRun(t *testing.T) {
	dir := t.TempDir()
	script := dir + "/session.ctl"
	if err := os.WriteFile(script, []byte("@5ms list\n@20ms snapshot\n@40ms quit\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	readFile := func(path string) string {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return string(b)
	}
	runOnce := func(tag string) (string, string) {
		jsonPath := dir + "/" + tag + ".json"
		outPath := dir + "/" + tag + ".out"
		out, err := os.Create(outPath)
		if err != nil {
			t.Fatal(err)
		}
		code := run([]string{"-script", script, "-timescale", "0", "-report-json", jsonPath}, nil, out)
		out.Close()
		if code != 0 {
			t.Fatalf("run exit = %d", code)
		}
		return readFile(outPath), readFile(jsonPath)
	}
	t1, j1 := runOnce("first")
	t2, j2 := runOnce("second")
	if t1 != t2 {
		t.Errorf("transcripts differ:\n%s\n---\n%s", t1, t2)
	}
	if j1 != j2 {
		t.Errorf("reports differ:\n%s\n---\n%s", j1, j2)
	}
	if !strings.Contains(j1, `"source": "premactl"`) {
		t.Errorf("report missing source: %s", j1)
	}
}
