// Command premapredict exercises PREMA's inference-time prediction model
// (Algorithm 1 plus the seq2seq length regression): it predicts a model
// instance's network-wide latency, simulates it, and reports the error.
//
// Usage:
//
//	premapredict -model CNN-VN -batch 4
//	premapredict -model RNN-MT2 -batch 1 -inlen 30 -samples 20
//	premapredict -all
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/dnn"
	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	var (
		modelName = flag.String("model", "", "workload label (see premazoo); empty with -all sweeps the suite")
		batch     = flag.Int("batch", 1, "batch size")
		samples   = flag.Int("samples", 10, "sampled instances per model (RNN lengths vary)")
		all       = flag.Bool("all", false, "sweep the whole benchmark suite")
	)
	flag.Parse()

	cfg := npu.DefaultConfig()
	gen, err := workload.NewGenerator(cfg, 0xA11CE)
	if err != nil {
		fatal(err)
	}

	var models []*dnn.Model
	if *all || *modelName == "" {
		models = dnn.Suite()
	} else {
		m, err := dnn.ByName(*modelName)
		if err != nil {
			fatal(err)
		}
		models = []*dnn.Model{m}
	}

	fmt.Printf("%-10s %-5s %-9s %-12s %-12s %-8s\n",
		"model", "batch", "inLen", "predicted", "simulated", "error")
	for _, m := range models {
		var errSum float64
		for i := 0; i < *samples; i++ {
			rng := workload.RNGFor(0x9ced, i)
			task, err := gen.Instance(0, m, *batch, sched.Medium, 0, nil, rng)
			if err != nil {
				fatal(err)
			}
			pred := cfg.Millis(task.EstimatedCycles)
			act := cfg.Millis(task.IsolatedCycles)
			e := math.Abs(pred-act) / act
			errSum += e
			if i == 0 || m.IsRNN() {
				fmt.Printf("%-10s b%-4d %-9d %-12.3f %-12.3f %-8.2f%%\n",
					m.Name, *batch, task.InLen, pred, act, e*100)
			}
			if !m.IsRNN() {
				break // CNNs are deterministic; one sample suffices
			}
		}
		if m.IsRNN() {
			fmt.Printf("%-10s b%-4d %-9s %-12s %-12s avg %.2f%%\n",
				m.Name, *batch, "-", "-", "-", errSum/float64(*samples)*100)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "premapredict:", err)
	os.Exit(1)
}
