// Command premapredict exercises PREMA's inference-time prediction model
// (Algorithm 1 plus the seq2seq length regression): it predicts a model
// instance's network-wide latency, simulates it, and reports the error.
//
// Usage:
//
//	premapredict -model CNN-VN -batch 4
//	premapredict -model RNN-MT2 -batch 1 -samples 20
//	premapredict -all
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	prema "repro"
)

func main() {
	var (
		modelName = flag.String("model", "", "workload label (see premazoo); empty with -all sweeps the suite")
		batch     = flag.Int("batch", 1, "batch size")
		samples   = flag.Int("samples", 10, "sampled instances per model (RNN lengths vary)")
		all       = flag.Bool("all", false, "sweep the whole benchmark suite")
	)
	flag.Parse()

	sys, err := prema.NewSystem()
	if err != nil {
		fatal(err)
	}
	cfg := sys.NPU()

	var models []*prema.Model
	if *all || *modelName == "" {
		for _, name := range prema.SuiteModels() {
			m, err := sys.Model(name)
			if err != nil {
				fatal(err)
			}
			models = append(models, m)
		}
	} else {
		m, err := sys.Model(*modelName)
		if err != nil {
			fatal(err)
		}
		models = []*prema.Model{m}
	}

	fmt.Printf("%-10s %-5s %-9s %-12s %-12s %-8s\n",
		"model", "batch", "inLen", "predicted", "simulated", "error")
	for _, m := range models {
		var errSum float64
		for i := 0; i < *samples; i++ {
			insts, err := sys.Instances(i, prema.TaskSpec{Model: m.Name, Batch: *batch})
			if err != nil {
				fatal(err)
			}
			task := insts[0]
			pred := cfg.Millis(task.EstimatedCycles)
			act := cfg.Millis(task.IsolatedCycles)
			e := math.Abs(pred-act) / act
			errSum += e
			if i == 0 || m.IsRNN() {
				fmt.Printf("%-10s b%-4d %-9d %-12.3f %-12.3f %-8.2f%%\n",
					m.Name, *batch, task.InLen, pred, act, e*100)
			}
			if !m.IsRNN() {
				break // CNNs are deterministic; one sample suffices
			}
		}
		if m.IsRNN() {
			fmt.Printf("%-10s b%-4d %-9s %-12s %-12s avg %.2f%%\n",
				m.Name, *batch, "-", "-", "-", errSum/float64(*samples)*100)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "premapredict:", err)
	os.Exit(1)
}
