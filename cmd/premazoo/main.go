// Command premazoo inspects the benchmark model zoo: the eight-model
// suite of Section III plus the auxiliary models, their per-layer GEMM
// lowerings, MAC counts, footprints, and simulated isolated latencies
// (Table I configuration).
//
// Usage:
//
//	premazoo                  # suite summary
//	premazoo -model CNN-VN    # per-layer detail
//	premazoo -config          # print the Table I / Table II configuration
package main

import (
	"flag"
	"fmt"
	"os"

	prema "repro"
)

func main() {
	var (
		modelName  = flag.String("model", "", "show per-layer detail for one model")
		batch      = flag.Int("batch", 1, "batch size for latency estimates")
		showConfig = flag.Bool("config", false, "print NPU and scheduler configuration")
		disasm     = flag.Bool("disasm", false, "disassemble the compiled NPU program (with -model)")
	)
	flag.Parse()

	sys, err := prema.NewSystem()
	if err != nil {
		fatal(err)
	}
	cfg := sys.NPU()
	if *showConfig {
		printConfig(sys)
		return
	}

	// lengths picks the representative sequence lengths for a model:
	// the mid-range input with the regression-predicted output.
	lengths := func(m *prema.Model) (int, int) {
		if !m.IsRNN() {
			return 0, 0
		}
		inLen := (m.MinInLen + m.MaxInLen) / 2
		outLen, err := sys.PredictOutputLen(m, inLen)
		if err != nil {
			fatal(err)
		}
		return inLen, outLen
	}

	if *modelName != "" {
		m, err := sys.Model(*modelName)
		if err != nil {
			fatal(err)
		}
		if *disasm {
			inLen, outLen := lengths(m)
			prog, err := sys.Compile(m, *batch, inLen, outLen)
			if err != nil {
				fatal(err)
			}
			if err := prema.Disassemble(prog, os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		printModel(m, *batch)
		return
	}

	fmt.Printf("%-10s %-5s %-7s %-10s %-11s %-12s %-12s\n",
		"model", "class", "layers", "MACs(G)", "weights(MB)", "latency(ms)", "seq profile")
	for _, m := range prema.AllModels() {
		inLen, outLen := lengths(m)
		prog, err := sys.Compile(m, *batch, inLen, outLen)
		if err != nil {
			fatal(err)
		}
		profile := "-"
		if m.IsRNN() {
			profile = fmt.Sprintf("%s (in=%d out~%d)", m.SeqProfile, inLen, outLen)
		}
		fmt.Printf("%-10s %-5s %-7d %-10.2f %-11.1f %-12.3f %-12s\n",
			m.Name, m.Class, prog.Layers,
			float64(prog.TotalMACs)/1e9,
			float64(m.TotalWeightBytes(inLen, outLen))/(1<<20),
			cfg.Millis(prog.TotalCycles), profile)
	}
}

func printModel(m *prema.Model, batch int) {
	inLen, outLen := 0, 0
	if m.IsRNN() {
		inLen = (m.MinInLen + m.MaxInLen) / 2
		outLen = inLen // representative unroll for inspection
	}
	fmt.Printf("%s (%s), batch %d\n\n", m.Name, m.Class, batch)
	fmt.Printf("%-16s %-7s %-24s %-10s %-10s\n", "layer", "kind", "GEMM (MxK)x(KxN)", "MACs(M)", "out(KB)")
	seen := map[string]bool{}
	for _, l := range m.LayersFor(inLen, outLen) {
		if seen[l.Name] {
			continue
		}
		seen[l.Name] = true
		gemm := "-"
		if g, ok := l.GEMM(batch); ok {
			gemm = g.String()
		}
		fmt.Printf("%-16s %-7s %-24s %-10.1f %-10.1f\n",
			l.Name, l.Kind, gemm,
			float64(l.MACs(batch))/1e6,
			float64(prema.ElemBytes(l.OutputElems(batch)))/1024)
	}
}

func printConfig(sys *prema.System) {
	cfg := sys.NPU()
	fmt.Println("NPU configuration (Table I):")
	fmt.Printf("  systolic array        %dx%d PEs\n", cfg.SW, cfg.SH)
	fmt.Printf("  accumulator depth     %d\n", cfg.ACC)
	fmt.Printf("  frequency             %.0f MHz\n", cfg.FreqHz/1e6)
	fmt.Printf("  UBUF / WBUF           %d MB / %d MB\n", cfg.UBUFBytes>>20, cfg.WBUFBytes>>20)
	fmt.Printf("  memory channels       %d\n", cfg.MemChannels)
	fmt.Printf("  memory bandwidth      %.0f GB/s (%.1f B/cycle)\n",
		cfg.MemBWBytesPerSec/1e9, cfg.BytesPerCycle())
	fmt.Printf("  memory latency        %d cycles\n", cfg.MemLatencyCycles)
	fmt.Printf("  peak throughput       %.1f TMAC/s\n", cfg.PeakMACsPerSec()/1e12)
	scfg := sys.SchedConfig()
	fmt.Println("\nPREMA scheduler configuration (Table II):")
	fmt.Printf("  scheduling period     %v\n", scfg.Quantum)
	fmt.Printf("  tokens per priority   %v (low/medium/high)\n", scfg.TokenThresholdLevels)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "premazoo:", err)
	os.Exit(1)
}
