// Command premasim runs one multi-tenant NPU simulation and prints the
// per-task outcomes, the Equation 1-2 metrics, preemption statistics and
// an ASCII occupancy timeline (a Figure 2-style view).
//
// Usage:
//
//	premasim -policy PREMA -preemptive -mechanism dynamic -tasks 8 -seed 3
//	premasim -policy FCFS -tasks 8
//	premasim -npus 4 -routing least-work -policy PREMA -preemptive
//	premasim -autoscale queue-depth -slo 8ms -min-npus 1 -max-npus 4
//	premasim -scenario scenarios/single-failure.txt
//
// With -scenario the command executes a declarative chaos scenario
// (fleet, scheduler, load ramp, fault injections, assertions — see the
// scenarios/ corpus), prints the annotated fleet timeline with the
// assertion verdicts, and exits non-zero if any assertion failed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	prema "repro"
)

func main() {
	c, err := parseCLI(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fatal(err)
	}

	if c.scenario != "" {
		runScenario(c)
		return
	}

	sys, err := prema.NewSystem(prema.WithQuantum(c.quantum))
	if err != nil {
		fatal(err)
	}
	cfg := sys.NPU()

	policy, err := prema.ParsePolicy(c.policy)
	if err != nil {
		fatal(err)
	}
	// Forward -mechanism whenever the user set it explicitly, so a
	// mechanism without -preemptive is rejected by Validate instead of
	// being silently ignored (the flag's default only applies to
	// preemptive runs).
	sched := prema.Scheduler{Policy: policy, Preemptive: c.preemptive}
	if c.preemptive || c.set["mechanism"] {
		if sched.Mechanism, err = prema.ParseMechanism(c.mechanism); err != nil {
			fatal(err)
		}
	}
	if err := sched.Validate(); err != nil {
		fatal(err)
	}

	if c.autoscale != "" {
		route, err := prema.ParseRouting(c.routing)
		if err != nil {
			fatal(err)
		}
		runAutoscale(sys, prema.NodeSessionConfig{
			NPUs: c.npus, Routing: route, Scheduler: sched,
			// The light interactive mix: single-digit-millisecond SLOs
			// are unattainable for the heavy translation/ASR RNNs at any
			// fleet size.
			Models:  []string{"CNN-AN", "CNN-GN", "CNN-MN", "RNN-SA"},
			Horizon: c.serveHorizon, Seed: uint64(c.seed), Fleet: c.fleet,
			Autoscale: &prema.AutoscaleConfig{
				Scaler: c.autoscale, SLO: c.slo,
				MinNPUs: c.minNPUs, MaxNPUs: c.maxNPUs,
			},
		}, c.serveHorizon)
		return
	}

	if c.clients > 0 {
		route, err := prema.ParseRouting(c.routing)
		if err != nil {
			fatal(err)
		}
		runClosedLoop(sys, prema.NodeSessionConfig{
			NPUs: c.npus, Routing: route, Scheduler: sched,
			Horizon: c.serveHorizon, Seed: uint64(c.seed),
		}, c.clients, c.think, c.serveHorizon)
		return
	}

	spec := prema.WorkloadSpec{
		Tasks:         c.tasks,
		ArrivalWindow: time.Duration(c.windowMS) * time.Millisecond,
	}
	if c.batch > 0 {
		spec.BatchSizes = []int{c.batch}
	}
	if c.oracle {
		spec.Estimator = "oracle"
	}
	tasks, err := sys.Workload(spec, c.seed)
	if err != nil {
		fatal(err)
	}

	if c.npus > 1 {
		route, err := prema.ParseRouting(c.routing)
		if err != nil {
			fatal(err)
		}
		runNode(sys, prema.Node{
			NPUs: c.npus, Routing: route, Local: sched, Parallel: c.parallel,
		}, tasks)
		return
	}

	res, err := sys.Simulate(sched, tasks)
	if err != nil {
		fatal(err)
	}

	mech := "none"
	if c.preemptive {
		mech = sched.Mechanism.String()
	}
	fmt.Printf("policy=%s preemptive=%v mechanism=%s tasks=%d makespan=%.2fms wakes=%d preemptions=%d\n\n",
		policy, c.preemptive, mech, c.tasks,
		cfg.Millis(res.MakespanCycles), res.Wakes, res.ServicedPreemptions())

	fmt.Printf("%-4s %-8s %-4s %-8s %-10s %-10s %-10s %-8s %-6s\n",
		"id", "model", "bat", "prio", "arrive(ms)", "isolated", "turnaround", "NTT", "preempt")
	for _, t := range res.Tasks {
		fmt.Printf("%-4d %-8s b%-3d %-8s %-10.2f %-10.2f %-10.2f %-8.2f %-6d\n",
			t.ID, t.Model, t.Batch, t.Priority,
			cfg.Millis(t.Arrival), cfg.Millis(t.IsolatedCycles),
			cfg.Millis(t.Turnaround()), t.NTT(), t.Preemptions)
	}

	fmt.Printf("\nANTT=%.2f  STP=%.2f  fairness=%.3f  SLA@4x=%.0f%%  SLA@8x=%.0f%%\n",
		res.Metrics.ANTT, res.Metrics.STP, res.Metrics.Fairness,
		res.SLAViolationRate(4)*100, res.SLAViolationRate(8)*100)

	if c.timeline {
		fmt.Println()
		fmt.Print(res.Timeline.Render(cfg, 100))
	}
}

// runScenario executes one declarative chaos scenario file and prints
// its report; a failed assertion exits non-zero. -report-json and
// -report-html export the run through the shared RunReport schema —
// the same shape premactl sessions emit — and -trace-jsonl attaches
// telemetry and exports the per-request trace plus tick metrics as
// sorted JSONL (byte-identical across replays of the same scenario).
func runScenario(c *cli) {
	src, err := os.ReadFile(c.scenario)
	if err != nil {
		fatal(err)
	}
	sc, err := prema.ParseScenario(string(src))
	if err != nil {
		fatal(err)
	}
	sys, err := prema.NewSystem()
	if err != nil {
		fatal(err)
	}
	var tr *prema.Telemetry
	if c.traceJSONL != "" {
		tr = prema.NewTelemetry()
	}
	rep, err := sys.RunScenarioTraced(sc, tr)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Render())
	if c.traceJSONL != "" {
		lines, err := prema.EncodeTraceJSONL(rep.Events, rep.Samples)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(c.traceJSONL, lines, 0o644); err != nil {
			fatal(err)
		}
	}
	if c.reportJSON != "" || c.reportHTML != "" {
		run := prema.ReportFromScenario(rep)
		if c.reportJSON != "" {
			js, err := run.JSON()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(c.reportJSON, append(js, '\n'), 0o644); err != nil {
				fatal(err)
			}
		}
		if c.reportHTML != "" {
			page, err := run.HTML()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(c.reportHTML, page, 0o644); err != nil {
				fatal(err)
			}
		}
	}
	if !rep.Passed {
		os.Exit(1)
	}
}

// runAutoscale drives an elastic node session through a diurnal load
// ramp (0.4x -> 3x a single NPU's capacity and back, in five equal
// segments) and prints the scaling timeline next to the served
// statistics.
func runAutoscale(sys *prema.System, cfg prema.NodeSessionConfig, horizon time.Duration) {
	ramp := []float64{0.4, 1.5, 3.0, 1.5, 0.4}
	segment := horizon / time.Duration(len(ramp))
	ns, err := sys.OpenNode(cfg)
	if err != nil {
		fatal(err)
	}
	defer ns.Close() //premalint:ignore errdrop teardown after Drain already surfaced the session's stats; Close failures have nothing left to corrupt
	n, err := ns.OfferRamp(ramp, segment)
	if err != nil {
		fatal(err)
	}
	st, err := ns.Drain()
	if err != nil {
		fatal(err)
	}
	a := cfg.Autoscale
	fmt.Printf("autoscaling node: scaler=%s slo=%v fleet=[%d,%d] start=%d, %s routing, local %s\n",
		a.Scaler, a.SLO, a.MinNPUs, a.MaxNPUs, cfg.NPUs, cfg.Routing, cfg.Scheduler.Policy)
	fmt.Printf("load ramp: %v x %v segments, %d requests\n\n", ramp, segment, n)

	fmt.Println("scaling timeline:")
	for _, e := range st.Scaling.Events {
		bar := strings.Repeat("#", e.NPUs)
		if e.Delta == 0 {
			fmt.Printf("  %8.2fms  %-8s %s (start)\n", e.AtMS, fmt.Sprintf("%d NPUs", e.NPUs), bar)
			continue
		}
		fmt.Printf("  %8.2fms  %-8s %s (%+d)\n", e.AtMS, fmt.Sprintf("%d NPUs", e.NPUs), bar, e.Delta)
	}
	fmt.Printf("\nfleet: mean %.2f NPUs, peak %d, %d scale events\n",
		st.Scaling.MeanNPUs, st.Scaling.PeakNPUs, len(st.Scaling.Events)-1)
	fmt.Printf("latency: mean %.2fms  p50 %.2fms  p95 %.2fms  (SLO %.1fms)\n",
		st.MeanLatencyMS, st.P50LatencyMS, st.P95LatencyMS, st.Scaling.SLOLatencyMS)
	fmt.Printf("SLO violations: %.1f%% of measured requests\n", st.Scaling.SLOViolationFrac*100)
	fmt.Printf("per-NPU requests: %v\n", ns.Routed())
}

// runClosedLoop drives the streaming node session under a closed-loop
// client population and prints per-NPU plus aggregate statistics.
func runClosedLoop(sys *prema.System, cfg prema.NodeSessionConfig,
	clients int, think, horizon time.Duration) {

	ns, err := sys.OpenNode(cfg)
	if err != nil {
		fatal(err)
	}
	defer ns.Close() //premalint:ignore errdrop teardown after Drain already surfaced the session's stats; Close failures have nothing left to corrupt
	n, err := ns.OfferClients(clients, think, horizon)
	if err != nil {
		fatal(err)
	}
	st, err := ns.Drain()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("node: %d NPUs, %s routing, local %s (preemptive=%v)\n",
		cfg.NPUs, cfg.Routing, cfg.Scheduler.Policy, cfg.Scheduler.Preemptive)
	fmt.Printf("closed loop: %d clients, %v think, %v horizon, %d requests realized\n\n",
		clients, think, horizon, n)
	fmt.Printf("%-5s %-9s %10s %10s %10s %10s %10s\n",
		"NPU", "requests", "req/s", "mean(ms)", "p50(ms)", "p99(ms)", "SLA@4x")
	for i, per := range st.PerNPU {
		fmt.Printf("%-5d %-9d %10.0f %10.2f %10.2f %10.2f %9.0f%%\n",
			i, per.Requests, per.ThroughputPerSec, per.MeanLatencyMS,
			per.P50LatencyMS, per.P99LatencyMS, per.SLAViolations4x*100)
	}
	fmt.Printf("%-5s %-9d %10.0f %10.2f %10.2f %10.2f %9.0f%%\n",
		"node", st.Requests, st.ThroughputPerSec, st.MeanLatencyMS,
		st.P50LatencyMS, st.P99LatencyMS, st.SLAViolations4x*100)
}

// runNode drives the multi-NPU node path.
func runNode(sys *prema.System, node prema.Node, tasks []*prema.Instance) {
	res, err := sys.SimulateNode(node, tasks)
	if err != nil {
		fatal(err)
	}
	cfg := sys.NPU()
	fmt.Printf("node: %d NPUs, %s routing, local %s (preemptive=%v)\n\n",
		node.NPUs, node.Routing, node.Local.Policy, node.Local.Preemptive)
	fmt.Printf("%-5s %-6s %-13s %-10s\n", "NPU", "tasks", "makespan(ms)", "busy")
	for i, s := range res.PerNPU {
		fmt.Printf("%-5d %-6d %-13.2f %3.0f%%\n",
			i, s.Tasks, cfg.Millis(s.Makespan), s.BusyFrac*100)
	}
	fmt.Printf("\nANTT=%.2f  STP=%.2f  fairness=%.3f  preemptions=%d  SLA@4x=%.0f%%\n",
		res.Metrics.ANTT, res.Metrics.STP, res.Metrics.Fairness, res.Preemptions,
		res.SLAViolationRate(4)*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "premasim:", err)
	os.Exit(1)
}
