// Command premasim runs one multi-tenant NPU simulation and prints the
// per-task outcomes, the Equation 1-2 metrics, preemption statistics and
// an ASCII occupancy timeline (a Figure 2-style view).
//
// Usage:
//
//	premasim -policy PREMA -preemptive -mechanism dynamic -tasks 8 -seed 3
//	premasim -policy FCFS -tasks 8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/dnn"
	"repro/internal/metrics"
	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		policyName = flag.String("policy", "PREMA", "scheduling policy: FCFS|RRB|HPF|TOKEN|SJF|PREMA")
		preemptive = flag.Bool("preemptive", false, "enable the preemptible-NPU path")
		mechanism  = flag.String("mechanism", "dynamic",
			"preemption mechanism selector: static-checkpoint|static-kill|static-drain|dynamic|dynamic-kill")
		nTasks   = flag.Int("tasks", 8, "number of co-scheduled inference tasks")
		seed     = flag.Int("seed", 1, "workload seed (run index)")
		windowMS = flag.Int("window", 20, "arrival window in milliseconds")
		batch    = flag.Int("batch", 0, "fix all batch sizes (0 = mixed 1/4/16)")
		oracle   = flag.Bool("oracle", false, "use exact execution times as estimates")
		timeline = flag.Bool("timeline", true, "render the ASCII occupancy timeline")
		quantum  = flag.Duration("quantum", 250*time.Microsecond, "scheduling period time-quota")
		npus     = flag.Int("npus", 1, "NPUs in the node (>1 enables the cluster router)")
		routing  = flag.String("routing", "least-work",
			"cluster routing policy: round-robin|least-queued|least-work")
		parallel = flag.Int("parallel", 0,
			"concurrent per-NPU simulations in the cluster path (0 = GOMAXPROCS, 1 = sequential; results identical)")
	)
	flag.Parse()

	cfg := npu.DefaultConfig()
	scfg := sched.DefaultConfig()
	scfg.Quantum = *quantum

	gen, err := workload.NewGenerator(cfg, 0xA11CE)
	if err != nil {
		fatal(err)
	}
	spec := workload.Spec{
		Tasks:         *nTasks,
		ArrivalWindow: time.Duration(*windowMS) * time.Millisecond,
	}
	if *batch > 0 {
		spec.BatchSizes = []int{*batch}
	}
	if *oracle {
		spec.Estimator = workload.Oracle()
	}
	tasks, err := gen.Generate(spec, workload.RNGFor(0xBEEF, *seed))
	if err != nil {
		fatal(err)
	}

	if *npus > 1 {
		workers := *parallel
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		runCluster(cfg, scfg, tasks, *npus, *routing, *policyName, *preemptive, *mechanism, workers)
		return
	}

	policy, err := sched.ByName(*policyName, scfg)
	if err != nil {
		fatal(err)
	}
	var selector sched.MechanismSelector
	if *preemptive {
		if selector, err = sched.SelectorByName(*mechanism); err != nil {
			fatal(err)
		}
	}
	simulator, err := sim.New(sim.Options{
		NPU: cfg, Sched: scfg,
		Policy: policy, Preemptive: *preemptive, Selector: selector,
	}, workload.SchedTasks(tasks))
	if err != nil {
		fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("policy=%s preemptive=%v mechanism=%s tasks=%d makespan=%.2fms wakes=%d preemptions=%d\n\n",
		*policyName, *preemptive, selName(selector), *nTasks,
		cfg.Millis(res.Cycles), res.Wakes, countRealPreemptions(res))

	fmt.Printf("%-4s %-8s %-4s %-8s %-10s %-10s %-10s %-8s %-6s\n",
		"id", "model", "bat", "prio", "arrive(ms)", "isolated", "turnaround", "NTT", "preempt")
	for _, t := range res.Tasks {
		fmt.Printf("%-4d %-8s b%-3d %-8s %-10.2f %-10.2f %-10.2f %-8.2f %-6d\n",
			t.ID, t.Model, t.Batch, t.Priority,
			cfg.Millis(t.Arrival), cfg.Millis(t.IsolatedCycles),
			cfg.Millis(t.Turnaround()), t.NTT(), t.Preemptions)
	}

	m, err := metrics.FromTasks(res.Tasks)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nANTT=%.2f  STP=%.2f  fairness=%.3f  SLA@4x=%.0f%%  SLA@8x=%.0f%%\n",
		m.ANTT, m.STP, m.Fairness,
		metrics.SLAViolationRate(res.Tasks, 4)*100,
		metrics.SLAViolationRate(res.Tasks, 8)*100)

	if *timeline {
		fmt.Println()
		fmt.Print(res.Timeline.Render(cfg, 100))
	}
	_ = dnn.BatchSizes
}

// runCluster drives the multi-NPU node path, simulating up to parallel
// NPUs concurrently.
func runCluster(cfg npu.Config, scfg sched.Config, tasks []*workload.Task,
	npus int, routing, policy string, preemptive bool, mechanism string, parallel int) {

	var rp cluster.RoutingPolicy
	switch routing {
	case "round-robin":
		rp = cluster.RoundRobin
	case "least-queued":
		rp = cluster.LeastQueued
	case "least-work":
		rp = cluster.LeastWork
	default:
		fatal(fmt.Errorf("unknown routing policy %q", routing))
	}
	res, err := cluster.Run(cluster.Options{
		NPUs: npus, Routing: rp,
		NPU: cfg, Sched: scfg,
		LocalPolicy: policy, Preemptive: preemptive, Selector: mechanism,
		Parallel: parallel,
	}, tasks)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("node: %d NPUs, %s routing, local %s (preemptive=%v)\n\n",
		npus, routing, policy, preemptive)
	fmt.Printf("%-5s %-6s %-13s %-10s\n", "NPU", "tasks", "makespan(ms)", "busy")
	for i, s := range res.PerNPU {
		fmt.Printf("%-5d %-6d %-13.2f %3.0f%%\n",
			i, s.Tasks, cfg.Millis(s.Makespan), s.BusyFrac*100)
	}
	fmt.Printf("\nANTT=%.2f  STP=%.2f  fairness=%.3f  preemptions=%d  SLA@4x=%.0f%%\n",
		res.Metrics.ANTT, res.Metrics.STP, res.Metrics.Fairness, res.Preemptions,
		metrics.SLAViolationRate(res.Tasks, 4)*100)
}

func countRealPreemptions(res *sim.Result) int {
	n := 0
	for _, ev := range res.Preemptions {
		if ev.Cost.Mechanism.String() != "DRAIN" {
			n++
		}
	}
	return n
}

func selName(s sched.MechanismSelector) string {
	if s == nil {
		return "none"
	}
	return s.Name()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "premasim:", err)
	os.Exit(1)
}
