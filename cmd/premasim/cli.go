package main

// cli.go is premasim's flag surface, extracted into a testable
// parseCLI: every flag parses into one cli struct and every
// misconfigured combination fails eagerly with a targeted error instead
// of being silently ignored (cli_test.go locks the matrix in).

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	prema "repro"
)

// cli holds the parsed command line.
type cli struct {
	policy       string
	preemptive   bool
	mechanism    string
	tasks        int
	seed         int
	windowMS     int
	batch        int
	oracle       bool
	timeline     bool
	quantum      time.Duration
	npus         int
	routing      string
	parallel     int
	clients      int
	think        time.Duration
	serveHorizon time.Duration
	autoscale    string
	slo          time.Duration
	minNPUs      int
	maxNPUs      int
	fleet        string
	scenario     string
	reportJSON   string
	reportHTML   string
	traceJSONL   string

	// set records which flags the user passed explicitly; defaults
	// never trigger the combination checks.
	set map[string]bool
}

// parseCLI parses and validates the command line. It returns flag.ErrHelp
// unwrapped so main can exit 0 on -h.
func parseCLI(args []string) (*cli, error) {
	c := &cli{}
	fs := flag.NewFlagSet("premasim", flag.ContinueOnError)
	fs.StringVar(&c.policy, "policy", "PREMA",
		"scheduling policy: "+strings.Join(prema.Policies(), "|"))
	fs.BoolVar(&c.preemptive, "preemptive", false, "enable the preemptible-NPU path")
	fs.StringVar(&c.mechanism, "mechanism", "dynamic",
		"preemption mechanism selector: "+strings.Join(prema.Mechanisms(), "|"))
	fs.IntVar(&c.tasks, "tasks", 8, "number of co-scheduled inference tasks")
	fs.IntVar(&c.seed, "seed", 1, "workload seed (run index)")
	fs.IntVar(&c.windowMS, "window", 20, "arrival window in milliseconds")
	fs.IntVar(&c.batch, "batch", 0, "fix all batch sizes (0 = mixed 1/4/16)")
	fs.BoolVar(&c.oracle, "oracle", false, "use exact execution times as estimates")
	fs.BoolVar(&c.timeline, "timeline", true, "render the ASCII occupancy timeline")
	fs.DurationVar(&c.quantum, "quantum", 250*time.Microsecond, "scheduling period time-quota")
	fs.IntVar(&c.npus, "npus", 1, "NPUs in the node (>1 enables the cluster router)")
	fs.StringVar(&c.routing, "routing", "least-work",
		"cluster routing policy: round-robin|least-queued|least-work")
	fs.IntVar(&c.parallel, "parallel", 0,
		"concurrent per-NPU simulations in the cluster path (0 = GOMAXPROCS, 1 = sequential; results identical)")
	fs.IntVar(&c.clients, "clients", 0,
		"closed-loop client population (>0 switches to the streaming node session: each client keeps one request in flight)")
	fs.DurationVar(&c.think, "think", 2*time.Millisecond,
		"mean exponential think time between a completion and the same client's next request")
	fs.DurationVar(&c.serveHorizon, "serve-horizon", 250*time.Millisecond,
		"streaming horizon: closed-loop release window, or the full autoscale load ramp")
	fs.StringVar(&c.autoscale, "autoscale", "",
		"autoscaling policy (switches to an elastic node session under a load ramp): "+
			strings.Join(prema.Scalers(), "|"))
	fs.DurationVar(&c.slo, "slo", 8*time.Millisecond,
		"P95 latency SLO the autoscaler targets")
	fs.IntVar(&c.minNPUs, "min-npus", 1, "autoscaling fleet minimum")
	fs.IntVar(&c.maxNPUs, "max-npus", 4, "autoscaling fleet maximum")
	fs.StringVar(&c.fleet, "fleet", "",
		"weighted hardware-tier template for streaming runs, e.g. 70%:fast,30%:slow (builtin tiers fast|slow, custom name@factor)")
	fs.StringVar(&c.scenario, "scenario", "",
		"declarative chaos scenario file to execute (see scenarios/); conflicts with every other flag")
	fs.StringVar(&c.reportJSON, "report-json", "",
		"write the scenario's run report (the schema premactl exports) as JSON to this file; requires -scenario")
	fs.StringVar(&c.reportHTML, "report-html", "",
		"write the scenario's run report as a self-contained HTML page to this file; requires -scenario")
	fs.StringVar(&c.traceJSONL, "trace-jsonl", "",
		"run the scenario with telemetry attached and write the per-request trace plus tick metrics as JSONL to this file; requires -scenario")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	c.set = map[string]bool{}
	fs.Visit(func(f *flag.Flag) { c.set[f.Name] = true })
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// validate rejects misconfigured flag combinations eagerly.
func (c *cli) validate() error {
	if c.set["scenario"] {
		// A scenario file declares the whole run — fleet, scheduler,
		// load, seed — so every other flag would be silently ignored.
		// The report exporters are outputs, not run parameters, so they
		// compose with -scenario.
		names := make([]string, 0, len(c.set))
		for name := range c.set {
			if name != "scenario" && name != "report-json" && name != "report-html" && name != "trace-jsonl" {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		if len(names) > 0 {
			return fmt.Errorf("-%s conflicts with -scenario: the scenario file declares the whole run", names[0])
		}
		if c.scenario == "" {
			return fmt.Errorf("-scenario needs a file path")
		}
		return nil
	}
	if c.set["report-json"] || c.set["report-html"] {
		return fmt.Errorf("-report-json/-report-html export a scenario's run report: add -scenario <file>")
	}
	if c.set["trace-jsonl"] {
		return fmt.Errorf("-trace-jsonl exports a scenario's telemetry: add -scenario <file>")
	}
	if c.set["routing"] && c.npus == 1 && c.clients == 0 && c.autoscale == "" {
		return fmt.Errorf("-routing needs a multi-NPU node: combine it with -npus > 1, -clients or -autoscale")
	}
	if c.clients > 0 && c.serveHorizon <= 0 {
		return fmt.Errorf("-clients %d needs a positive -serve-horizon (got %v): no request could ever be released",
			c.clients, c.serveHorizon)
	}
	if c.autoscale != "" && c.clients > 0 {
		return fmt.Errorf("-autoscale and -clients are mutually exclusive: closed-loop clients pin to their NPU, autoscaling requires routed traffic")
	}
	if c.autoscale != "" && c.serveHorizon <= 0 {
		return fmt.Errorf("-autoscale needs a positive -serve-horizon (got %v) to spread the load ramp over", c.serveHorizon)
	}
	if c.autoscale == "" && (c.set["slo"] || c.set["min-npus"] || c.set["max-npus"]) {
		return fmt.Errorf("-slo/-min-npus/-max-npus only apply to autoscaling runs: add -autoscale <scaler> (known: %s)",
			strings.Join(prema.Scalers(), "|"))
	}
	if c.autoscale != "" || c.clients > 0 {
		for _, name := range []string{"tasks", "window", "batch", "oracle", "parallel", "timeline"} {
			if c.set[name] {
				return fmt.Errorf("-%s only applies to batch simulation runs; it has no effect with -autoscale/-clients", name)
			}
		}
	}
	if c.autoscale != "" && c.set["think"] {
		return fmt.Errorf("-think only applies to closed-loop runs (-clients)")
	}
	if c.fleet != "" && c.autoscale == "" {
		return fmt.Errorf("-fleet declares hardware tiers for the elastic node session: combine it with -autoscale (closed-loop clients bypass the router)")
	}
	return nil
}
