package main

import (
	"strings"
	"testing"
)

// TestParseCLIMatrix locks in the flag-combination rules: which
// command lines parse, which fail eagerly, and with what message.
func TestParseCLIMatrix(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of the error; "" means must succeed
	}{
		{name: "defaults", args: nil},
		{name: "batch run", args: []string{"-policy", "FCFS", "-tasks", "4", "-seed", "2"}},
		{name: "multi-npu", args: []string{"-npus", "3", "-routing", "round-robin"}},
		{name: "closed loop", args: []string{"-clients", "8", "-think", "1ms"}},
		{name: "autoscale", args: []string{"-autoscale", "queue-depth", "-slo", "8ms", "-min-npus", "1", "-max-npus", "6"}},
		{name: "autoscale tiered fleet", args: []string{"-autoscale", "queue-depth", "-fleet", "70%:fast,30%:slow"}},
		{name: "scenario alone", args: []string{"-scenario", "scenarios/single-failure.txt"}},
		{name: "scenario with report exports",
			args: []string{"-scenario", "x.txt", "-report-json", "out.json", "-report-html", "out.html"}},

		{name: "scenario empty path", args: []string{"-scenario", ""},
			wantErr: "-scenario needs a file path"},
		{name: "scenario with policy", args: []string{"-scenario", "x.txt", "-policy", "FCFS"},
			wantErr: "-policy conflicts with -scenario"},
		{name: "scenario with seed", args: []string{"-scenario", "x.txt", "-seed", "3"},
			wantErr: "-seed conflicts with -scenario"},
		{name: "scenario with autoscale", args: []string{"-scenario", "x.txt", "-autoscale", "queue-depth"},
			wantErr: "-autoscale conflicts with -scenario"},
		{name: "scenario with npus", args: []string{"-scenario", "x.txt", "-npus", "2"},
			wantErr: "-npus conflicts with -scenario"},
		{name: "scenario with clients", args: []string{"-scenario", "x.txt", "-clients", "4"},
			wantErr: "-clients conflicts with -scenario"},
		{name: "scenario conflict reports first flag alphabetically",
			args:    []string{"-scenario", "x.txt", "-seed", "3", "-policy", "FCFS"},
			wantErr: "-policy conflicts with -scenario"},

		{name: "report json without scenario", args: []string{"-report-json", "out.json"},
			wantErr: "add -scenario"},
		{name: "report html without scenario", args: []string{"-report-html", "out.html"},
			wantErr: "add -scenario"},

		{name: "routing alone", args: []string{"-routing", "least-queued"},
			wantErr: "-routing needs a multi-NPU node"},
		{name: "slo without autoscale", args: []string{"-slo", "5ms"},
			wantErr: "-slo/-min-npus/-max-npus only apply to autoscaling runs"},
		{name: "min-npus without autoscale", args: []string{"-min-npus", "2"},
			wantErr: "only apply to autoscaling runs"},
		{name: "autoscale with clients", args: []string{"-autoscale", "queue-depth", "-clients", "4"},
			wantErr: "mutually exclusive"},
		{name: "autoscale with tasks", args: []string{"-autoscale", "queue-depth", "-tasks", "4"},
			wantErr: "-tasks only applies to batch simulation runs"},
		{name: "clients with oracle", args: []string{"-clients", "4", "-oracle"},
			wantErr: "-oracle only applies to batch simulation runs"},
		{name: "autoscale with think", args: []string{"-autoscale", "queue-depth", "-think", "1ms"},
			wantErr: "-think only applies to closed-loop runs"},
		{name: "clients with zero horizon", args: []string{"-clients", "4", "-serve-horizon", "0"},
			wantErr: "needs a positive -serve-horizon"},
		{name: "autoscale with zero horizon", args: []string{"-autoscale", "queue-depth", "-serve-horizon", "0"},
			wantErr: "needs a positive -serve-horizon"},
		{name: "fleet without autoscale", args: []string{"-fleet", "70%:fast,30%:slow"},
			wantErr: "combine it with -autoscale"},
		{name: "fleet with clients", args: []string{"-clients", "4", "-fleet", "70%:fast,30%:slow"},
			wantErr: "combine it with -autoscale"},
		{name: "fleet with scenario", args: []string{"-scenario", "x.txt", "-fleet", "70%:fast,30%:slow"},
			wantErr: "-fleet conflicts with -scenario"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := parseCLI(tc.args)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseCLI(%v) = %v, want success", tc.args, err)
				}
				if c == nil {
					t.Fatal("nil cli on success")
				}
				return
			}
			if err == nil {
				t.Fatalf("parseCLI(%v) succeeded, want error containing %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseCLI(%v) = %q, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestParseCLIScenarioPath checks the scenario path lands in the struct.
func TestParseCLIScenarioPath(t *testing.T) {
	c, err := parseCLI([]string{"-scenario", "scenarios/baseline.txt"})
	if err != nil {
		t.Fatal(err)
	}
	if c.scenario != "scenarios/baseline.txt" {
		t.Fatalf("scenario = %q", c.scenario)
	}
}
