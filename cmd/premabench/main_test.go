package main

// main_test.go pins the premabench experiment catalogue: the checked-in
// experiments.golden must equal exp.IDs() exactly, in sorted order.
// premalint's expgolden analyzer enforces the same contract statically
// from the register sites; this test closes the loop at runtime, so a
// drifting golden list fails both ways.

import (
	"os"
	"strings"
	"testing"

	"repro/internal/exp"
)

func TestExperimentsGoldenMatchesRegistry(t *testing.T) {
	data, err := os.ReadFile("experiments.golden")
	if err != nil {
		t.Fatal(err)
	}
	var golden []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		golden = append(golden, line)
	}
	ids := exp.IDs()
	if len(golden) != len(ids) {
		t.Fatalf("experiments.golden lists %d experiments, registry has %d:\n golden  %v\n registry %v",
			len(golden), len(ids), golden, ids)
	}
	for i := range ids {
		if golden[i] != ids[i] {
			t.Errorf("experiments.golden[%d] = %q, registry has %q (list must be sorted and complete)",
				i, golden[i], ids[i])
		}
	}
}
