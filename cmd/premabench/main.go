// Command premabench regenerates the paper's evaluation: every figure and
// table has a registered experiment that reruns its workloads against the
// simulator and prints the same rows/series the paper reports.
//
// Usage:
//
//	premabench                    # run every experiment
//	premabench -exp fig12,fig13   # run selected experiments
//	premabench -list              # list experiment IDs
//	premabench -runs 10           # override the per-config run count
//	premabench -csv results/      # additionally write CSV files
//	premabench -parallel 1        # force sequential execution
//	premabench -cache=false       # disable the cross-experiment cache
//	premabench -cachestats        # report cache hits/misses per experiment
//
// Experiments execute through the concurrent engine in internal/exp;
// -parallel bounds its worker pool (default: GOMAXPROCS). Output is
// byte-identical for every worker count. Overlapping sweeps (the NP-FCFS
// baseline, the Static-*/Dynamic-* configurations shared between fig12
// and fig15, ...) resolve through a keyed simulation-result cache shared
// across all selected experiments; cached and fresh results are
// bit-identical, so -cache only changes runtime, never output.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		expFlag  = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		runs     = flag.Int("runs", 0, "simulation runs per configuration (default 25)")
		seed     = flag.Uint64("seed", 0, "workload seed (default: suite default)")
		csvDir   = flag.String("csv", "", "directory to write per-table CSV files")
		parallel = flag.Int("parallel", 0,
			"simulation worker-pool size (0 = GOMAXPROCS, 1 = sequential; results identical)")
		cache = flag.Bool("cache", true,
			"share simulation results across overlapping experiments (results identical)")
		cacheStats = flag.Bool("cachestats", false,
			"report cache hits/misses per experiment")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	suite, err := exp.NewSuite()
	if err != nil {
		fatal(err)
	}
	if *runs > 0 {
		suite.Runs = *runs
	}
	if *seed != 0 {
		suite.Seed = *seed
	}
	if *parallel > 0 {
		suite.Workers = *parallel
	}
	if !*cache {
		suite.Cache = nil
	}

	var selected []exp.Experiment
	if *expFlag == "" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			selected = append(selected, e)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	for _, e := range selected {
		start := time.Now()
		var before exp.CacheStats
		if suite.Cache != nil {
			before = suite.Cache.Stats()
		}
		tables, err := e.Run(suite)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		for _, t := range tables {
			fmt.Println(t.String())
			if *csvDir != "" {
				path := filepath.Join(*csvDir, t.ID+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fatal(err)
				}
			}
		}
		if *cacheStats && suite.Cache != nil {
			after := suite.Cache.Stats()
			fmt.Printf("[%s cache: %d hits, %d misses; %d entries total]\n",
				e.ID, after.Hits-before.Hits, after.Misses-before.Misses, after.Entries)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "premabench:", err)
	os.Exit(1)
}
