// Command premabench regenerates the paper's evaluation: every figure and
// table has a registered experiment that reruns its workloads against the
// simulator and prints the same rows/series the paper reports.
//
// Usage:
//
//	premabench                    # run every experiment
//	premabench -exp fig12,fig13   # run selected experiments
//	premabench -list              # list experiment IDs
//	premabench -runs 10           # override the per-config run count
//	premabench -csv results/      # additionally write CSV files
//	premabench -parallel 1        # force sequential execution
//	premabench -cache=false       # disable the cross-experiment cache
//	premabench -cachestats        # report cache hits/misses per experiment
//	premabench -cachedir ~/.cache # persist results across invocations
//
// Experiments execute through prema.Suite's concurrent engine; -parallel
// bounds its worker pool (default: GOMAXPROCS). Output is byte-identical
// for every worker count. Overlapping sweeps (the NP-FCFS baseline, the
// Static-*/Dynamic-* configurations shared between fig12 and fig15, ...)
// resolve through a keyed simulation-result cache shared across all
// selected experiments; cached and fresh results are bit-identical, so
// -cache only changes runtime, never output. -cachedir persists the
// cache on disk, so a repeated invocation skips warm work too.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	prema "repro"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		expFlag  = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		runs     = flag.Int("runs", 0, "simulation runs per configuration (default 25)")
		seed     = flag.Uint64("seed", 0, "workload seed (default: suite default)")
		csvDir   = flag.String("csv", "", "directory to write per-table CSV files")
		parallel = flag.Int("parallel", 0,
			"simulation worker-pool size (0 = GOMAXPROCS, 1 = sequential; results identical)")
		cache = flag.Bool("cache", true,
			"share simulation results across overlapping experiments (results identical)")
		cacheStats = flag.Bool("cachestats", false,
			"report cache hits/misses per experiment")
		cacheDir = flag.String("cachedir", "",
			"persist cached simulation results in this directory across invocations")
	)
	flag.Parse()

	suite, err := prema.NewSuite(prema.SuiteOptions{
		Runs:     *runs,
		Seed:     *seed,
		Parallel: *parallel,
		NoCache:  !*cache && *cacheDir == "",
		CacheDir: *cacheDir,
	})
	if err != nil {
		fatal(err)
	}

	if *list {
		for _, e := range suite.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	known := map[string]bool{}
	var all []string
	for _, e := range suite.Experiments() {
		known[e.ID] = true
		all = append(all, e.ID)
	}
	var selected []string
	if *expFlag != "" {
		// Surface typos before any experiment runs.
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			if !known[id] {
				fatal(fmt.Errorf("unknown experiment %q (known: %v)", id, all))
			}
			selected = append(selected, id)
		}
	} else {
		selected = all
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	// On any mid-run failure, keep the warm results of the experiments
	// that did complete: flush the disk cache before bailing.
	fail := func(err error) {
		_ = suite.Close()
		fatal(err)
	}
	for _, id := range selected {
		start := time.Now()
		before := suite.CacheStats()
		results, err := suite.Run(id)
		if err != nil {
			fail(err)
		}
		for _, res := range results {
			for _, t := range res.Tables {
				fmt.Println(t.Text)
				if *csvDir != "" {
					path := filepath.Join(*csvDir, t.ID+".csv")
					if err := os.WriteFile(path, []byte(t.CSV), 0o644); err != nil {
						fail(err)
					}
				}
			}
		}
		if *cacheStats && suite.Cached() {
			after := suite.CacheStats()
			fmt.Printf("[%s cache: %d hits, %d misses; %d entries total]\n",
				id, after.Hits-before.Hits, after.Misses-before.Misses, after.Entries)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	// Write the warm cache back for the next invocation.
	if err := suite.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "premabench:", err)
	os.Exit(1)
}
