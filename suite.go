package prema

// suite.go is the experiment surface: one Suite shares a workload
// generator, a compiled-program cache and a simulation-result cache
// across every paper experiment it runs, so overlapping sweeps (the
// NP-FCFS baseline, the Static-*/Dynamic-* configurations shared between
// figures, ...) simulate once per process — and, with CacheDir set, once
// per machine.

import (
	"fmt"

	"repro/internal/exp"
)

// SuiteOptions configures an experiment suite.
type SuiteOptions struct {
	// Runs is the per-configuration simulation-run count (0 selects the
	// paper's 25).
	Runs int
	// Seed drives all workload randomness (0 selects the default).
	Seed uint64
	// Parallel bounds the engine's worker pool (0 = GOMAXPROCS, 1 =
	// sequential; results are byte-identical for every value).
	Parallel int
	// NoCache disables the simulation-result cache that otherwise
	// shares runs across overlapping experiments. Cached and fresh
	// results are bit-identical, so caching changes runtime, never
	// output — NoCache exists for benchmarking the simulator itself.
	NoCache bool
	// CacheDir additionally persists cached outcomes on disk across
	// processes (incompatible with NoCache), versioned by the NPU
	// configuration and profile seed; corrupt or mismatched files are
	// ignored. Call Close to write back.
	CacheDir string
}

// Table is one rendered experiment table.
type Table struct {
	// ID matches the experiment registry ("fig12", ...).
	ID string
	// Title describes what the paper's counterpart shows.
	Title string
	// Text is the aligned human-readable rendering.
	Text string
	// CSV is the comma-separated rendering.
	CSV string
}

// ExperimentResult is one experiment's regenerated output.
type ExperimentResult struct {
	// ID and Title identify the experiment.
	ID, Title string
	// Tables are the rendered panels.
	Tables []Table
}

// CacheStats snapshots the suite cache's effectiveness.
type CacheStats = exp.CacheStats

// Suite runs paper experiments over one shared simulation cache.
type Suite struct {
	inner *exp.Suite
}

// NewSuite builds an experiment suite against the paper's default
// configuration. Use System.NewSuite to run the experiments against a
// customized System.
func NewSuite(opt SuiteOptions) (*Suite, error) {
	inner, err := exp.NewSuite()
	if err != nil {
		return nil, err
	}
	return newSuite(inner, opt)
}

// NewSuite builds an experiment suite bound to this System: the
// experiments run against its NPU and scheduler configuration, share
// its compiled-program cache, and — with CacheDir set — persist under a
// fingerprint derived from its configuration.
func (s *System) NewSuite(opt SuiteOptions) (*Suite, error) {
	inner, err := exp.NewSuiteFor(s.opt.NPU, s.opt.Sched, s.gen, s.opt.ProfileSeed)
	if err != nil {
		return nil, err
	}
	return newSuite(inner, opt)
}

func newSuite(inner *exp.Suite, opt SuiteOptions) (*Suite, error) {
	if opt.Runs > 0 {
		inner.Runs = opt.Runs
	}
	if opt.Seed != 0 {
		inner.Seed = opt.Seed
	}
	if opt.Parallel > 0 {
		inner.Workers = opt.Parallel
	}
	if opt.NoCache {
		if opt.CacheDir != "" {
			return nil, fmt.Errorf("prema: SuiteOptions.CacheDir requires the cache (drop NoCache)")
		}
		inner.Cache = nil
	}
	if opt.CacheDir != "" {
		if err := inner.AttachDiskCache(opt.CacheDir); err != nil {
			return nil, err
		}
	}
	return &Suite{inner: inner}, nil
}

// ExperimentInfo identifies one registered experiment.
type ExperimentInfo struct {
	// ID is the registry key passed to Suite.Run; Title describes what
	// the experiment regenerates.
	ID, Title string
}

// Experiments lists the registered paper experiments in ID order.
func (s *Suite) Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range exp.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	return out
}

// Cached reports whether the suite's simulation-result cache is
// enabled.
func (s *Suite) Cached() bool { return s.inner.Cache != nil }

// Run regenerates the named experiments (all of them when none are
// given), sharing the suite's simulation cache across the whole
// selection. Results are returned in the requested order.
func (s *Suite) Run(ids ...string) ([]ExperimentResult, error) {
	var selected []exp.Experiment
	if len(ids) == 0 {
		selected = exp.All()
	} else {
		for _, id := range ids {
			e, err := exp.ByID(id)
			if err != nil {
				return nil, err
			}
			selected = append(selected, e)
		}
	}
	var out []ExperimentResult
	for _, e := range selected {
		tables, err := e.Run(s.inner)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		res := ExperimentResult{ID: e.ID, Title: e.Title}
		for _, t := range tables {
			res.Tables = append(res.Tables, Table{
				ID: t.ID, Title: t.Title, Text: t.String(), CSV: t.CSV(),
			})
		}
		out = append(out, res)
	}
	return out, nil
}

// CacheStats snapshots the suite's simulation-result cache counters
// (zero when caching is disabled).
func (s *Suite) CacheStats() CacheStats {
	if s.inner.Cache == nil {
		return CacheStats{}
	}
	return s.inner.Cache.Stats()
}

// Simulations reports how many simulations the suite actually executed
// (cache hits excluded).
func (s *Suite) Simulations() int64 { return s.inner.Simulations() }

// Close flushes the on-disk cache, if one is attached. The suite
// remains usable afterwards.
func (s *Suite) Close() error { return s.inner.FlushDiskCache() }

// Experiments lists the registered paper experiment IDs.
func Experiments() []string { return exp.IDs() }

// RunExperiment regenerates one paper figure/table by ID and returns the
// rendered tables.
//
// Deprecated: RunExperiment rebuilds a Suite — and therefore a cold
// simulation cache — on every call. Use NewSuite and Suite.Run, which
// share one cache across all experiments in the process.
func RunExperiment(id string) ([]string, error) {
	suite, err := NewSuite(SuiteOptions{})
	if err != nil {
		return nil, err
	}
	results, err := suite.Run(id)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, t := range results[0].Tables {
		out = append(out, t.Text)
	}
	return out, nil
}
