package prema

// registry.go is the plugin surface: custom scheduling policies,
// preemption-mechanism selectors, execution-time estimators and
// autoscaling policies register here and then participate everywhere a
// builtin does — Simulate, SimulateNode, sessions, autoscaled node
// sessions, the experiment suite — selected by the same typed
// identifiers. The six paper policies, the paper's mechanism
// configurations and the built-in scalers are pre-registered through
// the same internal registries, so builtins and plugins are
// indistinguishable to the rest of the system.

import (
	"repro/internal/autoscale"
	"repro/internal/sched"
	"repro/internal/workload"
)

// PolicyFactory builds one policy instance for one simulation run.
// Factories must return a fresh instance per call: policies may keep
// scratch state between Pick calls, so an instance must never be shared
// by concurrently running simulations.
type PolicyFactory func(SchedConfig) (SchedulingPolicy, error)

// RegisterPolicy adds a custom scheduling policy under a label.
// Registration is process-wide and write-once: a duplicate label is an
// error, so a label always denotes one policy (the simulation cache
// keys on it). The policy then works as Policy(name) in any Scheduler.
func RegisterPolicy(name string, factory PolicyFactory) error {
	return sched.RegisterPolicy(name, sched.PolicyFactory(factory))
}

// SelectorFactory builds one mechanism-selector instance for one
// simulation run.
type SelectorFactory func() (MechanismSelector, error)

// RegisterSelector adds a custom preemption-mechanism selector under a
// label; it then works as Mechanism(name) in any preemptive Scheduler.
// Registration is process-wide and write-once.
func RegisterSelector(name string, factory SelectorFactory) error {
	return sched.RegisterSelector(name, sched.SelectorFactory(factory))
}

// RegisterEstimator adds a custom execution-time estimator under a
// label; it then works as WorkloadSpec.Estimator. Estimators must be
// pure (same inputs, same estimate) and safe for concurrent use. An
// estimator that additionally implements interface{ CacheKey() string }
// opts its runs into the experiment suite's simulation-result cache.
// Registration is process-wide and write-once.
func RegisterEstimator(name string, est Estimator) error {
	return workload.RegisterEstimator(name, est)
}

// ScalerFactory builds one autoscaling-policy instance for one node
// session. Factories must return a fresh instance per call: scalers may
// keep scratch state between evaluation ticks (integrators, hysteresis
// counters), so an instance must never be shared by two sessions.
type ScalerFactory func(ScalerConfig) (Scaler, error)

// RegisterScaler adds a custom autoscaling policy under a label; it
// then works as AutoscaleConfig.Scaler in any node session, alongside
// the built-in "static", "target-latency" and "queue-depth" scalers.
// Registration is process-wide and write-once.
func RegisterScaler(name string, factory ScalerFactory) error {
	return autoscale.Register(name, autoscale.Factory(factory))
}

// Policies lists the registered scheduling-policy labels in sorted
// order (builtins plus registrations).
func Policies() []string { return sched.PolicyNames() }

// Mechanisms lists the registered preemption-mechanism labels in sorted
// order (builtins plus registrations).
func Mechanisms() []string { return sched.SelectorNames() }

// Estimators lists the selectable estimator labels in sorted order
// (builtins plus registrations).
func Estimators() []string { return workload.EstimatorNames() }

// Scalers lists the registered autoscaling-policy labels in sorted
// order (builtins plus registrations).
func Scalers() []string { return autoscale.Names() }
