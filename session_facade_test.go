package prema

import (
	"testing"
	"time"

	"repro/internal/serving"
	"repro/internal/workload"
)

// TestSessionStatsMatchServing proves the facade Session's incremental
// Stats are the same numbers internal/serving's batch entry point
// computes for the identical stream: submit the generated requests one
// by one, reading Stats along the way, and the final statistics must be
// float-for-float equal to Server.Run's.
func TestSessionStatsMatchServing(t *testing.T) {
	sys := newSystem(t)
	spec := serving.Spec{Horizon: 300 * time.Millisecond, OfferedLoad: 0.6}
	srv := serving.NewServer(sys.NPU(), sys.SchedConfig(), sys.gen)

	want, err := srv.Run(spec, "PREMA", true, "dynamic", workload.RNGFor(21, 2))
	if err != nil {
		t.Fatal(err)
	}

	sess, err := sys.Open(SessionConfig{
		Scheduler: Scheduler{Policy: PREMA, Preemptive: true, Mechanism: Dynamic},
		Horizon:   spec.Horizon,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	stream, err := srv.Generate(spec, workload.RNGFor(21, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Submit incrementally, reading stats midway to exercise the
	// incremental path before the final comparison.
	for i, req := range stream {
		if err := sess.SubmitInstance(req); err != nil {
			t.Fatal(err)
		}
		if i == len(stream)/2 {
			if _, err := sess.Stats(); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err := sess.Drain()
	if err != nil {
		t.Fatal(err)
	}

	if got.Requests != want.Requests || got.Measured != want.Measured {
		t.Errorf("counts diverge: got %d/%d, want %d/%d",
			got.Requests, got.Measured, want.Requests, want.Measured)
	}
	floats := [][2]float64{
		{got.ThroughputPerSec, want.ThroughputPerSec},
		{got.MeanLatencyMS, want.MeanLatencyMS},
		{got.P50LatencyMS, want.P50LatencyMS},
		{got.P95LatencyMS, want.P95LatencyMS},
		{got.P99LatencyMS, want.P99LatencyMS},
		{got.MeanNTT, want.MeanNTT},
		{got.SLAViolations4x, want.SLAViolations4x},
	}
	for i, pair := range floats {
		if pair[0] != pair[1] {
			t.Errorf("stat %d diverges: session %v, batch %v", i, pair[0], pair[1])
		}
	}
}

// TestSessionOpenLoop drives the facade's open-loop arrival process and
// the request-level Submit surface.
func TestSessionOpenLoop(t *testing.T) {
	sys := newSystem(t)
	sess, err := sys.Open(SessionConfig{
		Scheduler: Scheduler{Policy: PREMA, Preemptive: true},
		Window:    2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	n, err := sess.OfferLoad(0.5, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || sess.Pending() != n {
		t.Fatalf("offered %d, pending %d", n, sess.Pending())
	}
	if err := sess.Submit(Request{Model: "CNN-VN", Batch: 4, Priority: High,
		Arrival: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(Request{Model: "RNN-MT1",
		Arrival: 12 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != n+2 {
		t.Errorf("stats cover %d requests, want %d", st.Requests, n+2)
	}
	if st.ThroughputPerSec <= 0 || st.P99LatencyMS < st.P50LatencyMS {
		t.Errorf("implausible stats: %+v", st)
	}
	if _, err := sess.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(Request{Model: "CNN-AN"}); err == nil {
		t.Error("submit after drain should error")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Stats(); err == nil {
		t.Error("stats after close should error")
	}
	if _, err := sess.OfferLoad(0.5, time.Second); err == nil {
		t.Error("offer after close should error")
	}
}

// TestOpenNodeStreams exercises the node-level facade end to end: a
// 2-NPU node under every typed routing policy serves an open-loop
// stream, reporting per-NPU and aggregate statistics that add up.
func TestOpenNodeStreams(t *testing.T) {
	sys := newSystem(t)
	for _, routing := range Routings() {
		ns, err := sys.OpenNode(NodeSessionConfig{
			NPUs:    2,
			Routing: routing,
			Scheduler: Scheduler{
				Policy: PREMA, Preemptive: true, Mechanism: Dynamic,
			},
			Horizon: 250 * time.Millisecond,
			Seed:    7,
		})
		if err != nil {
			t.Fatal(err)
		}
		n, err := ns.OfferLoad(1.2, 250*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		st, err := ns.Drain()
		if err != nil {
			t.Fatal(err)
		}
		if st.Requests != n {
			t.Errorf("%s: aggregate covers %d of %d requests", routing, st.Requests, n)
		}
		if len(st.PerNPU) != 2 {
			t.Fatalf("%s: %d per-NPU views, want 2", routing, len(st.PerNPU))
		}
		total := 0
		for i, per := range st.PerNPU {
			total += per.Requests
			if per.Requests == 0 {
				t.Errorf("%s: NPU %d served nothing at 1.2 node load", routing, i)
			}
		}
		if total != st.Requests {
			t.Errorf("%s: per-NPU totals %d diverge from aggregate %d",
				routing, total, st.Requests)
		}
		if err := ns.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOpenNodeValidation covers the node facade's error paths.
func TestOpenNodeValidation(t *testing.T) {
	sys := newSystem(t)
	if _, err := sys.OpenNode(NodeSessionConfig{
		NPUs: 0, Scheduler: Scheduler{Policy: FCFS},
	}); err == nil {
		t.Error("zero NPUs should be rejected")
	}
	if _, err := sys.OpenNode(NodeSessionConfig{
		NPUs: 2, Scheduler: Scheduler{Policy: "NOPE"},
	}); err == nil {
		t.Error("unknown policy should be rejected")
	}
	if _, err := sys.OpenNode(NodeSessionConfig{
		NPUs: 2, Routing: Routing("teleport"), Scheduler: Scheduler{Policy: FCFS},
	}); err == nil {
		t.Error("unknown routing should be rejected")
	}
	if _, err := sys.OpenNode(NodeSessionConfig{
		NPUs: 2, Scheduler: Scheduler{Policy: FCFS}, Models: []string{"NOPE"},
	}); err == nil {
		t.Error("unknown model should be rejected")
	}
}

// TestFacadeClosedLoopSweep runs the concurrency sweep the closed-loop
// model exists for, through the facade: per seed the sweep is
// deterministic, and mean latency never decreases as the population
// grows on both the single-NPU Session and the node.
func TestFacadeClosedLoopSweep(t *testing.T) {
	sys := newSystem(t)
	sessionLat := func(clients int) float64 {
		sess, err := sys.Open(SessionConfig{
			Scheduler: Scheduler{Policy: FCFS},
			Seed:      11,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		if _, err := sess.OfferClients(clients, 2*time.Millisecond,
			200*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		st, err := sess.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return st.MeanLatencyMS
	}
	if a, b := sessionLat(4), sessionLat(4); a != b {
		t.Errorf("closed-loop session not deterministic per seed: %v vs %v", a, b)
	}
	if lo, hi := sessionLat(1), sessionLat(32); lo > hi {
		t.Errorf("session latency decreased with concurrency: 1->%v 32->%v", lo, hi)
	}

	ns, err := sys.OpenNode(NodeSessionConfig{
		NPUs:      2,
		Routing:   LeastWork,
		Scheduler: Scheduler{Policy: PREMA, Preemptive: true},
		Seed:      13,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()
	n, err := ns.OfferClients(6, 2*time.Millisecond, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ns.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != n {
		t.Errorf("node aggregate covers %d of %d realized requests", st.Requests, n)
	}
	for i, per := range st.PerNPU {
		if per.Requests == 0 {
			t.Errorf("NPU %d received no closed-loop clients", i)
		}
	}
}
