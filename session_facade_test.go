package prema

import (
	"testing"
	"time"

	"repro/internal/serving"
	"repro/internal/workload"
)

// TestSessionStatsMatchServing proves the facade Session's incremental
// Stats are the same numbers internal/serving's batch entry point
// computes for the identical stream: submit the generated requests one
// by one, reading Stats along the way, and the final statistics must be
// float-for-float equal to Server.Run's.
func TestSessionStatsMatchServing(t *testing.T) {
	sys := newSystem(t)
	spec := serving.Spec{Horizon: 300 * time.Millisecond, OfferedLoad: 0.6}
	srv := serving.NewServer(sys.NPU(), sys.SchedConfig(), sys.gen)

	want, err := srv.Run(spec, "PREMA", true, "dynamic", workload.RNGFor(21, 2))
	if err != nil {
		t.Fatal(err)
	}

	sess, err := sys.Open(SessionConfig{
		Scheduler: Scheduler{Policy: PREMA, Preemptive: true, Mechanism: Dynamic},
		Horizon:   spec.Horizon,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	stream, err := srv.Generate(spec, workload.RNGFor(21, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Submit incrementally, reading stats midway to exercise the
	// incremental path before the final comparison.
	for i, req := range stream {
		if err := sess.SubmitInstance(req); err != nil {
			t.Fatal(err)
		}
		if i == len(stream)/2 {
			if _, err := sess.Stats(); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err := sess.Drain()
	if err != nil {
		t.Fatal(err)
	}

	if got.Requests != want.Requests || got.Measured != want.Measured {
		t.Errorf("counts diverge: got %d/%d, want %d/%d",
			got.Requests, got.Measured, want.Requests, want.Measured)
	}
	floats := [][2]float64{
		{got.ThroughputPerSec, want.ThroughputPerSec},
		{got.MeanLatencyMS, want.MeanLatencyMS},
		{got.P50LatencyMS, want.P50LatencyMS},
		{got.P95LatencyMS, want.P95LatencyMS},
		{got.P99LatencyMS, want.P99LatencyMS},
		{got.MeanNTT, want.MeanNTT},
		{got.SLAViolations4x, want.SLAViolations4x},
	}
	for i, pair := range floats {
		if pair[0] != pair[1] {
			t.Errorf("stat %d diverges: session %v, batch %v", i, pair[0], pair[1])
		}
	}
}

// TestSessionOpenLoop drives the facade's open-loop arrival process and
// the request-level Submit surface.
func TestSessionOpenLoop(t *testing.T) {
	sys := newSystem(t)
	sess, err := sys.Open(SessionConfig{
		Scheduler: Scheduler{Policy: PREMA, Preemptive: true},
		Window:    2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	n, err := sess.OfferLoad(0.5, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || sess.Pending() != n {
		t.Fatalf("offered %d, pending %d", n, sess.Pending())
	}
	if err := sess.Submit(Request{Model: "CNN-VN", Batch: 4, Priority: High,
		Arrival: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(Request{Model: "RNN-MT1",
		Arrival: 12 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != n+2 {
		t.Errorf("stats cover %d requests, want %d", st.Requests, n+2)
	}
	if st.ThroughputPerSec <= 0 || st.P99LatencyMS < st.P50LatencyMS {
		t.Errorf("implausible stats: %+v", st)
	}
	if _, err := sess.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(Request{Model: "CNN-AN"}); err == nil {
		t.Error("submit after drain should error")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Stats(); err == nil {
		t.Error("stats after close should error")
	}
	if _, err := sess.OfferLoad(0.5, time.Second); err == nil {
		t.Error("offer after close should error")
	}
}
