// Preemption: reproduces the Figure 2 intuition on a concrete two-task
// scenario — a long low-priority inference interrupted by a short
// high-priority request — under the four scheduler/mechanism combinations
// the paper contrasts: NP-FCFS, NP-HPF, P-HPF (checkpoint) and PREMA with
// dynamic mechanism selection. Each run renders the NPU occupancy
// timeline so the preemption behaviour is directly visible.
//
// Run with:
//
//	go run ./examples/preemption
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/metrics"
	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	cfg := npu.DefaultConfig()
	scfg := sched.DefaultConfig()
	gen, err := workload.NewGenerator(cfg, 0xA11CE)
	if err != nil {
		log.Fatal(err)
	}

	// The Figure 2 cast: I1 = long low-priority (VGGNet b16),
	// I2 = short low-priority (GoogLeNet b1), I3 = high-priority
	// arriving mid-execution (AlexNet b1).
	makeTasks := func() []*workload.Task {
		rng := workload.RNGFor(7, 1)
		vn, err := gen.InstanceByName(0, "CNN-VN", 16, sched.Low, 0, rng)
		if err != nil {
			log.Fatal(err)
		}
		gn, err := gen.InstanceByName(1, "CNN-GN", 1, sched.Low,
			cfg.Cycles(2*time.Millisecond), rng)
		if err != nil {
			log.Fatal(err)
		}
		an, err := gen.InstanceByName(2, "CNN-AN", 1, sched.High,
			cfg.Cycles(5*time.Millisecond), rng)
		if err != nil {
			log.Fatal(err)
		}
		return []*workload.Task{vn, gn, an}
	}

	configs := []struct {
		label      string
		policy     string
		preemptive bool
		selector   string
	}{
		{"(a) NP-FCFS", "FCFS", false, ""},
		{"(b) NP-HPF", "HPF", false, ""},
		{"(c) P-HPF + CHECKPOINT", "HPF", true, "static-checkpoint"},
		{"(d) P-PREMA + dynamic", "PREMA", true, "dynamic"},
	}
	for _, c := range configs {
		tasks := makeTasks()
		policy, err := sched.ByName(c.policy, scfg)
		if err != nil {
			log.Fatal(err)
		}
		var sel sched.MechanismSelector
		if c.selector != "" {
			if sel, err = sched.SelectorByName(c.selector); err != nil {
				log.Fatal(err)
			}
		}
		simulator, err := sim.New(sim.Options{
			NPU: cfg, Sched: scfg, Policy: policy,
			Preemptive: c.preemptive, Selector: sel,
		}, workload.SchedTasks(tasks))
		if err != nil {
			log.Fatal(err)
		}
		res, err := simulator.Run()
		if err != nil {
			log.Fatal(err)
		}
		m, err := metrics.FromTasks(res.Tasks)
		if err != nil {
			log.Fatal(err)
		}
		var hiNTT float64
		for _, t := range res.Tasks {
			if t.Priority == sched.High {
				hiNTT = t.NTT()
			}
		}
		fmt.Printf("%s   ANTT=%.2f  high-priority NTT=%.2f  STP=%.2f\n",
			c.label, m.ANTT, hiNTT, m.STP)
		fmt.Print(res.Timeline.Render(cfg, 90))
		fmt.Println()
	}
	fmt.Println("Preemption lets the high-priority task (I3) finish early; PREMA additionally")
	fmt.Println("lets the short low-priority task (I2) slip in, minimizing average latency.")
}
