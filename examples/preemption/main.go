// Preemption: reproduces the Figure 2 intuition on a concrete scenario —
// a long low-priority inference interrupted by a short high-priority
// request — under the four scheduler/mechanism combinations the paper
// contrasts: NP-FCFS, NP-HPF, P-HPF (checkpoint) and PREMA with dynamic
// mechanism selection. Each run renders the NPU occupancy timeline so
// the preemption behaviour is directly visible.
//
// Run with:
//
//	go run ./examples/preemption
package main

import (
	"fmt"
	"log"
	"time"

	prema "repro"
)

func main() {
	sys, err := prema.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	cfg := sys.NPU()

	// The Figure 2 cast: I1 = long low-priority (VGGNet b16),
	// I2 = short low-priority (GoogLeNet b1), I3 = high-priority
	// arriving mid-execution (AlexNet b1). Instances regenerate per
	// configuration so every scheduler sees a fresh scenario.
	makeTasks := func() []*prema.Instance {
		tasks, err := sys.Instances(1,
			prema.TaskSpec{Model: "CNN-VN", Batch: 16, Priority: prema.Low},
			prema.TaskSpec{Model: "CNN-GN", Batch: 1, Priority: prema.Low,
				Arrival: 2 * time.Millisecond},
			prema.TaskSpec{Model: "CNN-AN", Batch: 1, Priority: prema.High,
				Arrival: 5 * time.Millisecond},
		)
		if err != nil {
			log.Fatal(err)
		}
		return tasks
	}

	configs := []struct {
		label string
		cfg   prema.Scheduler
	}{
		{"(a) NP-FCFS", prema.Scheduler{Policy: prema.FCFS}},
		{"(b) NP-HPF", prema.Scheduler{Policy: prema.HPF}},
		{"(c) P-HPF + CHECKPOINT", prema.Scheduler{Policy: prema.HPF,
			Preemptive: true, Mechanism: prema.StaticCheckpoint}},
		{"(d) P-PREMA + dynamic", prema.Scheduler{Policy: prema.PREMA,
			Preemptive: true, Mechanism: prema.Dynamic}},
	}
	for _, c := range configs {
		res, err := sys.Simulate(c.cfg, makeTasks())
		if err != nil {
			log.Fatal(err)
		}
		var hiNTT float64
		for _, t := range res.Tasks {
			if t.Priority == prema.High {
				hiNTT = t.NTT()
			}
		}
		fmt.Printf("%s   ANTT=%.2f  high-priority NTT=%.2f  STP=%.2f\n",
			c.label, res.Metrics.ANTT, hiNTT, res.Metrics.STP)
		fmt.Print(res.Timeline.Render(cfg, 90))
		fmt.Println()
	}
	fmt.Println("Preemption lets the high-priority task (I3) finish early; PREMA additionally")
	fmt.Println("lets the short low-priority task (I2) slip in, minimizing average latency.")
}
