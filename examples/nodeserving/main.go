// Nodeserving: the node-level streaming endpoint — the Section II-C
// deployment model (a router in front of multiple preemptible NPUs) as
// a long-lived serving session instead of a batch run. Part one streams
// the same open-loop request load across a 2-NPU node under each typed
// routing policy, showing how the router choice shifts the per-NPU
// split and the node-wide tail. Part two sweeps a closed-loop client
// population (each client keeps exactly one request in flight) from 1
// to 64 clients: unlike the open-loop sweep, load self-limits, so
// throughput flattens at node capacity while latency keeps climbing —
// the curve operators use to pick a concurrency ceiling.
//
// Run with:
//
//	go run ./examples/nodeserving
package main

import (
	"fmt"
	"log"
	"time"

	prema "repro"
)

func main() {
	sys, err := prema.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	const horizon = 300 * time.Millisecond
	scheduler := prema.Scheduler{Policy: prema.PREMA, Preemptive: true,
		Mechanism: prema.Dynamic}

	fmt.Println("== open loop: 1.4x single-NPU load streamed across 2 NPUs ==")
	fmt.Printf("%-13s %-12s %10s %10s %10s %10s\n",
		"router", "split", "req/s", "p50(ms)", "p99(ms)", "SLA@4x")
	for _, routing := range prema.Routings() {
		ns, err := sys.OpenNode(prema.NodeSessionConfig{
			NPUs:      2,
			Routing:   routing,
			Scheduler: scheduler,
			Horizon:   horizon,
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := ns.OfferLoad(1.4, horizon); err != nil {
			log.Fatal(err)
		}
		st, err := ns.Drain()
		if err != nil {
			log.Fatal(err)
		}
		routed := ns.Routed()
		fmt.Printf("%-13s %-12s %10.0f %10.2f %10.2f %9.0f%%\n",
			routing, fmt.Sprintf("%d/%d", routed[0], routed[1]),
			st.ThroughputPerSec, st.P50LatencyMS, st.P99LatencyMS,
			st.SLAViolations4x*100)
		if err := ns.Close(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\n== closed loop: client sweep on the least-work node (2ms think) ==")
	fmt.Printf("%-8s %10s %10s %10s %10s   %s\n",
		"clients", "req/s", "mean(ms)", "p99(ms)", "SLA@4x", "per-NPU requests")
	for _, clients := range []int{1, 2, 4, 8, 16, 32, 64} {
		ns, err := sys.OpenNode(prema.NodeSessionConfig{
			NPUs:      2,
			Routing:   prema.LeastWork,
			Scheduler: scheduler,
			Horizon:   horizon,
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := ns.OfferClients(clients, 2*time.Millisecond, horizon); err != nil {
			log.Fatal(err)
		}
		st, err := ns.Drain()
		if err != nil {
			log.Fatal(err)
		}
		split := ""
		for i, per := range st.PerNPU {
			if i > 0 {
				split += " + "
			}
			split += fmt.Sprintf("%d", per.Requests)
		}
		fmt.Printf("%-8d %10.0f %10.2f %10.2f %9.0f%%   %s\n",
			clients, st.ThroughputPerSec, st.MeanLatencyMS, st.P99LatencyMS,
			st.SLAViolations4x*100, split)
		if err := ns.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nThe routers split the same stream differently but all keep both NPUs busy;")
	fmt.Println("closed-loop throughput saturates at node capacity while latency keeps growing")
	fmt.Println("with concurrency — the knee tells an operator how many clients a node holds.")
}
