// Quickstart: build a PREMA system, inspect the workload, run one
// multi-tenant simulation under the PREMA scheduler with dynamic
// preemption, and print the paper's figures of merit.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	prema "repro"
)

func main() {
	sys, err := prema.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	cfg := sys.NPU()
	fmt.Printf("NPU: %dx%d systolic array @ %.0f MHz, %.0f GB/s memory\n\n",
		cfg.SW, cfg.SH, cfg.FreqHz/1e6, cfg.MemBWBytesPerSec/1e9)

	// Draw one 8-task workload (the paper's evaluation shape): random
	// models from the suite, random priorities, random arrival times.
	tasks, err := sys.Workload(prema.WorkloadSpec{Tasks: 8}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload:")
	for _, t := range tasks {
		fmt.Printf("  task %d: %-8s batch %-2d priority %-6s arrives %6.2f ms (isolated %6.2f ms, predicted %6.2f ms)\n",
			t.ID, t.Model, t.Batch, t.Priority,
			cfg.Millis(t.Arrival), cfg.Millis(t.IsolatedCycles), cfg.Millis(t.EstimatedCycles))
	}

	// Simulate under the paper's scheduler: token-based PREMA policy
	// with Algorithm 3 dynamic preemption-mechanism selection.
	res, err := sys.Simulate(prema.Scheduler{
		Policy:     prema.PREMA,
		Preemptive: true,
		Mechanism:  prema.Dynamic,
	}, tasks)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nPREMA results: ANTT=%.2f  STP=%.2f  fairness=%.3f  SLA@4x violations=%.0f%%\n",
		res.Metrics.ANTT, res.Metrics.STP, res.Metrics.Fairness,
		res.SLAViolationRate(4)*100)
	fmt.Printf("makespan %.2f ms, %d preemption events\n\n",
		cfg.Millis(res.MakespanCycles), len(res.Preemptions))
	fmt.Println("NPU occupancy timeline:")
	fmt.Print(res.Timeline.Render(cfg, 96))
}
