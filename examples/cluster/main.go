// Cluster: the system-node level the paper leaves as future work
// (Section II-C) — a Kubernetes-style router spreading inference requests
// across several preemptible NPUs, each running its own local scheduler.
// The example shows that (1) adding NPUs shrinks latency, (2) the
// NPU-local scheduler still matters at every scale, and (3) PREMA's
// inference-time predictor composes upward into work-balanced routing.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	prema "repro"
)

func main() {
	sys, err := prema.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	const (
		tasks = 32
		runs  = 8
	)
	fmt.Printf("%-5s %-13s %-15s %8s %8s %10s\n",
		"NPUs", "router", "local", "ANTT", "STP", "SLA@4x")
	for _, npus := range []int{1, 2, 4, 8} {
		for _, local := range []struct {
			label string
			cfg   prema.Scheduler
		}{
			{"NP-FCFS", prema.Scheduler{Policy: prema.FCFS}},
			{"Dynamic-PREMA", prema.Scheduler{Policy: prema.PREMA, Preemptive: true}},
		} {
			var antt, stp, sla float64
			for r := 0; r < runs; r++ {
				ts, err := sys.Workload(prema.WorkloadSpec{Tasks: tasks}, r)
				if err != nil {
					log.Fatal(err)
				}
				res, err := sys.SimulateNode(prema.Node{
					NPUs: npus, Routing: prema.LeastWork, Local: local.cfg,
				}, ts)
				if err != nil {
					log.Fatal(err)
				}
				antt += res.Metrics.ANTT / runs
				stp += res.Metrics.STP / runs
				sla += res.SLAViolationRate(4) / runs
			}
			fmt.Printf("%-5d %-13s %-15s %8.2f %8.2f %9.0f%%\n",
				npus, prema.LeastWork, local.label, antt, stp, sla*100)
		}
	}
	fmt.Println("\nEven with predictive routing, the NPU-local PREMA scheduler cuts ANTT by")
	fmt.Println("several x at every node size: routing balances load, preemption fixes ordering.")
}
