// Serving: the paper's Figure 1 deployment as a streaming endpoint — a
// long-lived Session fed by an open-loop Poisson arrival process with
// dynamic batching, the TensorRT-Inference-Server operating regime. The
// example sweeps the offered load and prints the throughput-latency
// curve an operator provisions against, comparing the NP-FCFS baseline
// with PREMA: preemption moves the p99 knee visibly to the right.
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"time"

	prema "repro"
)

func main() {
	sys, err := prema.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	schedulers := []struct {
		label string
		cfg   prema.Scheduler
	}{
		{"NP-FCFS", prema.Scheduler{Policy: prema.FCFS}},
		{"PREMA", prema.Scheduler{Policy: prema.PREMA, Preemptive: true,
			Mechanism: prema.Dynamic}},
	}

	const horizon = 400 * time.Millisecond
	fmt.Printf("%-9s %-6s %10s %10s %10s %10s %8s\n",
		"scheduler", "load", "req/s", "p50(ms)", "p99(ms)", "SLA@4x", "batch")
	for _, s := range schedulers {
		for _, load := range []float64{0.3, 0.5, 0.7, 0.9} {
			sess, err := sys.Open(prema.SessionConfig{
				Scheduler: s.cfg,
				// A CNN-serving endpoint: light models arrive fast
				// enough for TRT-style dynamic batching to bite.
				Models:  []string{"CNN-AN", "CNN-GN", "CNN-MN"},
				Window:  4 * time.Millisecond,
				Horizon: horizon,
			})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := sess.OfferLoad(load, horizon); err != nil {
				log.Fatal(err)
			}
			st, err := sess.Drain()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-9s %-6.1f %10.0f %10.2f %10.2f %9.0f%% %8.1f\n",
				s.label, load, st.ThroughputPerSec,
				st.P50LatencyMS, st.P99LatencyMS,
				st.SLAViolations4x*100, st.MeanBatch)
			if err := sess.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("\nThroughput tracks the offered load for both schedulers; PREMA's preemption")
	fmt.Println("keeps short and high-priority requests ahead of long batched runs, cutting")
	fmt.Println("median latency and SLA violations at every load level.")
}
