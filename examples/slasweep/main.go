// Slasweep: the Figure 13 study as a library user would run it — sweep
// the SLA target (expressed as a multiple of each task's isolated
// execution time) and report the fraction of violated requests under the
// baseline and under PREMA, for cloud operators choosing service tiers.
//
// Run with:
//
//	go run ./examples/slasweep
package main

import (
	"fmt"
	"log"

	prema "repro"
)

func main() {
	sys, err := prema.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	schedulers := []struct {
		label string
		cfg   prema.Scheduler
	}{
		{"NP-FCFS", prema.Scheduler{Policy: prema.FCFS}},
		{"P-SJF", prema.Scheduler{Policy: prema.SJF, Preemptive: true,
			Mechanism: prema.StaticCheckpoint}},
		{"PREMA", prema.Scheduler{Policy: prema.PREMA, Preemptive: true,
			Mechanism: prema.Dynamic}},
	}
	const runs = 20

	// Pool completed tasks per scheduler across runs.
	pooled := make([][]*prema.Task, len(schedulers))
	for si, s := range schedulers {
		for r := 0; r < runs; r++ {
			tasks, err := sys.Workload(prema.WorkloadSpec{Tasks: 8}, r)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sys.Simulate(s.cfg, tasks)
			if err != nil {
				log.Fatal(err)
			}
			pooled[si] = append(pooled[si], res.Tasks...)
		}
	}

	fmt.Printf("%-24s", "SLA target (x isolated)")
	for _, s := range schedulers {
		fmt.Printf("%10s", s.label)
	}
	fmt.Println()
	for target := 2.0; target <= 20; target += 2 {
		fmt.Printf("%-24.0f", target)
		for si := range schedulers {
			violated := 0
			for _, t := range pooled[si] {
				if t.NTT() > target {
					violated++
				}
			}
			fmt.Printf("%9.1f%%", float64(violated)/float64(len(pooled[si]))*100)
		}
		fmt.Println()
	}
	fmt.Println("\nPREMA keeps violations low at tight targets while — unlike SJF — still")
	fmt.Println("prioritizing high-priority requests (see examples/preemption).")
}
