// Controlplane: the live fleet driver as a library. A ControlPlane
// owns an autoscaled NPU fleet and advances the deterministic stream
// clock under operator commands — here a scripted session that cordons
// a backend mid-ramp, watches the scaler compensate through snapshots,
// and exports the run report. The second half replays the identical
// script on a fresh plane and shows the transcript and report bytes
// match exactly: an interactive session pinned to virtual timestamps
// is a reproducible artifact, same as a scenario file.
//
// Run with:
//
//	go run ./examples/controlplane
package main

import (
	"fmt"
	"log"
	"time"

	prema "repro"
)

// session is the scripted operator session: traffic ramps up, npu1 is
// cordoned out of rotation, the scaler compensates, the cordon lifts.
// Timestamps are virtual — at time-scale 0 the script runs as fast as
// the simulator computes, yet every command lands at the same instant
// of the stream on every run.
const session = `
# ramp up, disturb the fleet, watch the scaler react
@10ms  snapshot
@25ms  load 3
@30ms  cordon npu1
@45ms  snapshot
@60ms  uncordon npu1
@80ms  report
@100ms quit
`

func main() {
	transcript1, report1 := runSession()
	fmt.Print(transcript1)

	// Replay: a fresh plane, the same script. Byte-identical output is
	// the control plane's core guarantee — commands serialize into the
	// clock loop at their virtual timestamps, so nothing depends on
	// wall-clock scheduling.
	transcript2, report2 := runSession()
	fmt.Printf("\nreplay: transcript identical = %v, report identical = %v\n",
		transcript1 == transcript2, string(report1) == string(report2))

	fmt.Printf("exported run report: %d bytes of JSON (premasim -scenario -report-json emits the same schema)\n",
		len(report1))
}

// runSession opens a control plane and drives the scripted session.
func runSession() (string, []byte) {
	sys, err := prema.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	plane, err := sys.OpenControlPlane(prema.ControlPlaneConfig{
		NPUs:      2,
		Routing:   prema.LeastWork,
		Scheduler: prema.Scheduler{Policy: prema.PREMA, Preemptive: true},
		Models:    []string{"CNN-AN", "CNN-GN", "CNN-MN", "RNN-SA"},
		Autoscale: &prema.AutoscaleConfig{
			Scaler: "queue-depth", SLO: 8 * time.Millisecond,
			MinNPUs: 2, MaxNPUs: 4,
		},
		Seed:    7,
		Segment: 25 * time.Millisecond,
		Load:    2, // offered load until the script's `load` commands
		Name:    "cordon-compensate",
		// TimeScale 0: no wall pacing — the CI/replay mode.
	})
	if err != nil {
		log.Fatal(err)
	}
	defer plane.Close() //premalint:ignore errdrop the report was already exported; teardown of a sealed plane has nothing left to corrupt

	transcript, err := plane.RunScript(session)
	if err != nil {
		log.Fatal(err)
	}
	report, err := plane.Report().JSON()
	if err != nil {
		log.Fatal(err)
	}
	return transcript, report
}
