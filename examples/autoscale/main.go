// Autoscale: the elastic-capacity serving scenario — the
// Kubernetes-autoscaler analogue of the paper's Section II-C router. A
// node session starts with a single NPU and an SLO-driven scaling
// policy attached; a diurnal load ramp climbs to 3x a single NPU's
// capacity and back down, and the scaler grows the fleet into the peak
// and drains it back out, re-routing the live stream through the same
// shared router the fixed-fleet paths use. The closing comparison runs
// the identical ramp against the static no-op baseline (the fleet
// pinned at the minimum) to show what elasticity buys: a far lower
// SLO-violation fraction for a modest time-weighted fleet cost.
//
// Run with:
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	prema "repro"
)

func main() {
	sys, err := prema.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	// The interactive mix: light models whose batch-1 service sits well
	// under the SLO, so violations measure queueing, not model size.
	models := []string{"CNN-AN", "CNN-GN", "CNN-MN", "RNN-SA"}
	ramp := []float64{0.4, 1.5, 3.0, 1.5, 0.4}
	const (
		segment = 40 * time.Millisecond
		horizon = 200 * time.Millisecond
		slo     = 6 * time.Millisecond
	)

	fmt.Printf("load ramp: %v x %v segments (x single-NPU capacity), SLO %v\n\n", ramp, segment, slo)

	run := func(scaler string) prema.NodeSessionStats {
		ns, err := sys.OpenNode(prema.NodeSessionConfig{
			NPUs:      1,
			Routing:   prema.LeastWork,
			Scheduler: prema.Scheduler{Policy: prema.FCFS},
			Models:    models,
			Horizon:   horizon,
			Seed:      7,
			Autoscale: &prema.AutoscaleConfig{
				Scaler:  scaler,
				SLO:     slo,
				MinNPUs: 1,
				MaxNPUs: 4,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer ns.Close() //premalint:ignore errdrop example teardown after Drain; failing the demo on a cleanup error would obscure the output
		if _, err := ns.OfferRamp(ramp, segment); err != nil {
			log.Fatal(err)
		}
		st, err := ns.Drain()
		if err != nil {
			log.Fatal(err)
		}
		return st
	}

	fmt.Println("== queue-depth scaler: watch the fleet grow and shrink ==")
	elastic := run("queue-depth")
	for _, e := range elastic.Scaling.Events {
		note := "start"
		if e.Delta != 0 {
			note = fmt.Sprintf("%+d", e.Delta)
		}
		fmt.Printf("  %8.2fms  %-7s %s (%s)\n",
			e.AtMS, fmt.Sprintf("%d NPUs", e.NPUs), strings.Repeat("#", e.NPUs), note)
	}

	fmt.Println("\n== elasticity vs the fixed-minimum fleet ==")
	fmt.Printf("%-14s %10s %6s %10s %10s %10s\n",
		"scaler", "mean NPUs", "peak", "p95(ms)", "SLO viol.", "req/s")
	for _, scaler := range []string{"static", "queue-depth", "target-latency"} {
		st := run(scaler)
		fmt.Printf("%-14s %10.2f %6d %10.2f %9.1f%% %10.0f\n",
			scaler, st.Scaling.MeanNPUs, st.Scaling.PeakNPUs, st.P95LatencyMS,
			st.Scaling.SLOViolationFrac*100, st.ThroughputPerSec)
	}
}
