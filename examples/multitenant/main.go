// Multitenant: the paper's headline scenario — a consolidated inference
// server co-locating many DNN requests of mixed priorities on one NPU.
// The example compares the baseline NP-FCFS scheduler (TensorRT Inference
// Server style) against preemptive SJF and PREMA with dynamic preemption,
// averaged across several workload draws, and shows how PREMA balances
// latency, throughput, fairness and SLA satisfaction.
//
// Run with:
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	prema "repro"
)

func main() {
	sys, err := prema.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	schedulers := []struct {
		label string
		cfg   prema.Scheduler
	}{
		{"NP-FCFS (baseline)", prema.Scheduler{Policy: prema.FCFS}},
		{"NP-HPF", prema.Scheduler{Policy: prema.HPF}},
		{"P-SJF (checkpoint)", prema.Scheduler{Policy: prema.SJF, Preemptive: true,
			Mechanism: prema.StaticCheckpoint}},
		{"PREMA (dynamic)", prema.Scheduler{Policy: prema.PREMA, Preemptive: true,
			Mechanism: prema.Dynamic}},
	}

	const runs = 15
	fmt.Printf("%-20s %8s %8s %10s %10s %12s\n",
		"scheduler", "ANTT", "STP", "fairness", "SLA@4x", "preemptions")
	for _, s := range schedulers {
		var antt, stp, fair, sla, preempts float64
		for r := 0; r < runs; r++ {
			tasks, err := sys.Workload(prema.WorkloadSpec{Tasks: 8}, r)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sys.Simulate(s.cfg, tasks)
			if err != nil {
				log.Fatal(err)
			}
			antt += res.Metrics.ANTT / runs
			stp += res.Metrics.STP / runs
			fair += res.Metrics.Fairness / runs
			sla += res.SLAViolationRate(4) / runs
			preempts += float64(len(res.Preemptions)) / runs
		}
		fmt.Printf("%-20s %8.2f %8.2f %10.3f %9.0f%% %12.1f\n",
			s.label, antt, stp, fair, sla*100, preempts)
	}

	fmt.Println("\nLower ANTT and SLA violations are better; higher STP and fairness are better.")
	fmt.Println("PREMA approaches SJF's latency while restoring priority awareness and fairness.")
}
