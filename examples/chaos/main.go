// Chaos: declarative fault injection against the streaming serving
// stack. The first half builds a scenario in code — a two-NPU fleet
// with a queue-depth scaler, a failure injected mid-ramp, and
// assertions that the fleet recovers — runs it twice, and shows the
// reports render byte-identically (chaos here is a reproducible
// regression artifact, not a one-off experiment). The second half
// parses the same scenario from its text form, the format the
// scenarios/ corpus and premasim -scenario use, and shows a broken
// assertion reporting FAIL without failing the run.
//
// Run with:
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"
	"time"

	prema "repro"
)

func main() {
	sys, err := prema.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	// A scenario constructed in code: one NPU of the starting pair
	// fails at 80ms, and the assertions require the queue-depth scaler
	// to have refilled the fleet by 160ms.
	sc := &prema.Scenario{
		Name:       "code-built-failure",
		Fleet:      prema.ScenarioFleet{Initial: 2, Min: 2, Max: 6},
		Routing:    prema.NodeLeastWork,
		Policy:     "PREMA",
		Preemptive: true,
		Scaler:     "queue-depth",
		SLO:        8 * time.Millisecond,
		Models:     []string{"CNN-AN", "CNN-GN", "CNN-MN", "RNN-SA"},
		Seed:       7,
		Segment:    40 * time.Millisecond,
		Load:       []float64{0.5, 2, 2, 2, 0.5},
		Events: []prema.ScenarioEvent{
			{At: 80 * time.Millisecond, Op: prema.ChaosOp{Kind: prema.ChaosFail, NPU: 0}},
		},
		Asserts: []prema.ScenarioAssertion{
			{Kind: prema.AssertRecoveredBy, By: 160 * time.Millisecond},
			{Kind: prema.AssertFleetBetween, Lo: 1, Hi: 6, To: 200 * time.Millisecond},
		},
	}
	first, err := sys.RunScenario(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(first.Render())

	second, err := sys.RunScenario(sc)
	if err != nil {
		log.Fatal(err)
	}
	if first.Render() == second.Render() {
		fmt.Println("\nreplay: second run rendered byte-identically")
	} else {
		fmt.Println("\nreplay: DIVERGED (this is a bug)")
	}

	// The same scenario in the declarative text form, with one
	// assertion deliberately impossible: the run still completes and
	// reports — a failed assertion fails the verdict, never the run.
	text := `
scenario text-built-failure
fleet initial=2 min=2 max=6
routing least-work
policy PREMA preemptive
scaler queue-depth slo=8ms
seed 7
segment 40ms
load 0.5 2 2 2 0.5
at 80ms fail npu0
assert recovered_by 160ms
assert slo_violation_frac < 0.0001   # deliberately unattainable
`
	parsed, err := prema.ParseScenario(text)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.RunScenario(parsed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.Render())
	fmt.Printf("\nverdict: passed=%v (the broken assertion reports FAIL; the run itself completed)\n", rep.Passed)
}
