#!/bin/sh
# ci.sh — tier-1 verification in one command: formatting, vet, build,
# the full test suite, and a smoke-run of every example and CLI so
# facade regressions that only break consumers fail here too. Exits
# non-zero on the first failure.
set -eu
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...

# The streaming node-session paths (per-NPU session backends, the
# shared router, closed-loop injection, autoscaling) are
# concurrency-sensitive: race-check them on every run.
go test -race ./internal/serving/... ./internal/cluster/... ./internal/autoscale/... ./internal/scenario/...

# The examples are the public-API consumers: every one must build and
# run to completion against the current facade.
for ex in examples/*/; do
	echo "smoke: $ex"
	go run "./$ex" >/dev/null
done

# CLI smoke: one cheap invocation per command, exercising the typed
# flag-parsing paths.
echo "smoke: cmd/premasim"
go run ./cmd/premasim -policy PREMA -preemptive -tasks 4 -timeline=false >/dev/null
go run ./cmd/premasim -npus 2 -routing least-work -policy FCFS -tasks 6 >/dev/null
go run ./cmd/premasim -npus 2 -routing least-queued -policy PREMA -preemptive -clients 4 -think 2ms -serve-horizon 150ms >/dev/null
go run ./cmd/premasim -autoscale queue-depth -slo 8ms -min-npus 1 -max-npus 4 -policy FCFS -serve-horizon 150ms >/dev/null
# Scenario smoke: the corpus doubles as a regression suite — every file
# must parse, run and pass its assertions (non-zero exit otherwise).
for scn in scenarios/*.txt; do
	go run ./cmd/premasim -scenario "$scn" >/dev/null
done
echo "smoke: cmd/premazoo"
go run ./cmd/premazoo -config >/dev/null
echo "smoke: cmd/premapredict"
go run ./cmd/premapredict -model CNN-AN >/dev/null
echo "smoke: cmd/premabench"
go run ./cmd/premabench -exp fig7 -runs 2 >/dev/null

echo "ci.sh: all green"
