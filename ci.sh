#!/bin/sh
# ci.sh — tier-1 verification in one command: formatting, vet, build,
# and the full test suite. Exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...
