#!/bin/sh
# ci.sh — tier-1 verification in one command: formatting, vet, build,
# the full test suite, and a smoke-run of every example and CLI so
# facade regressions that only break consumers fail here too. Exits
# non-zero on the first failure.
set -eu
cd "$(dirname "$0")"

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...

# Domain invariants (determinism, facade boundary, write-once
# registries, must-check errors, no-copy state): the repo must lint
# clean, and the tripwire itself must still trip — a premalint that
# stops flagging the seeded-violation fixture is a silent CI hole.
echo "premalint"
go run ./cmd/premalint ./...
if go run ./cmd/premalint ./internal/lint/testdata/broken >/dev/null 2>&1; then
	echo "premalint: seeded-violation fixture passed the lint — tripwire is broken" >&2
	exit 1
fi

# The streaming node-session paths (per-NPU session backends, the
# shared router, closed-loop injection, autoscaling) are
# concurrency-sensitive: race-check them on every run. The simulator
# core and the worker-pool experiment engine (the most
# concurrency-dense code in the repo) race-check in -short mode — the
# full experiment sweeps blow past go test's timeout under the race
# detector, and the engine/cache race coverage lives in the fast tests.
go test -race ./internal/serving/... ./internal/cluster/... ./internal/autoscale/... ./internal/scenario/... ./internal/ctl/...
go test -race -short ./internal/sim/... ./internal/exp/...

# Coverage-guided smoke: exercise the simulator fuzz target's seed
# corpus plus a short fuzz burst, so invariant regressions surface on
# every run, not only when someone remembers to fuzz.
go test -fuzz=FuzzSimInvariants -fuzztime=5s -run '^$' ./internal/sim/

# The examples are the public-API consumers: every one must build and
# run to completion against the current facade.
for ex in examples/*/; do
	echo "smoke: $ex"
	go run "./$ex" >/dev/null
done

# CLI smoke: one cheap invocation per command, exercising the typed
# flag-parsing paths.
echo "smoke: cmd/premasim"
go run ./cmd/premasim -policy PREMA -preemptive -tasks 4 -timeline=false >/dev/null
go run ./cmd/premasim -npus 2 -routing least-work -policy FCFS -tasks 6 >/dev/null
go run ./cmd/premasim -npus 2 -routing least-queued -policy PREMA -preemptive -clients 4 -think 2ms -serve-horizon 150ms >/dev/null
go run ./cmd/premasim -autoscale queue-depth -slo 8ms -min-npus 1 -max-npus 4 -policy FCFS -serve-horizon 150ms >/dev/null
# Scenario smoke: the corpus doubles as a regression suite — every file
# must parse, run and pass its assertions (non-zero exit otherwise).
# .txt is the homogeneous corpus, .scn the heterogeneous-fleet stress
# scenarios.
for scn in scenarios/*.txt scenarios/*.scn; do
	go run ./cmd/premasim -scenario "$scn" >/dev/null
done
go run ./cmd/premasim -scenario scenarios/baseline.txt \
	-report-json "$tmpdir/baseline.json" >/dev/null
grep -q '"source": "scenario"' "$tmpdir/baseline.json"
# Telemetry determinism: a traced run of the heterogeneous stress
# scenario must emit a byte-identical JSONL stream (per-request events
# interleaved with autoscale-tick metric samples) on every replay, even
# under the race detector — the observability layer reads the same
# virtual clock as the scheduler and may never perturb or race it.
trace_ctl() {
	go run -race ./cmd/premasim -scenario scenarios/hetero-stress.scn \
		-trace-jsonl "$tmpdir/trace-$1.jsonl" >/dev/null
}
trace_ctl a
trace_ctl b
cmp "$tmpdir/trace-a.jsonl" "$tmpdir/trace-b.jsonl"
grep -q '"kind":"tick"' "$tmpdir/trace-a.jsonl"
grep -q '"tier":"slow"' "$tmpdir/trace-a.jsonl"

# Control-plane replay: the checked-in command script must run clean at
# time-scale 0 and produce the same transcript and report digest on
# every replay — the live REPL's determinism contract, checked the same
# way the scenario corpus is.
echo "smoke: cmd/premactl"
replay_ctl() {
	go run ./cmd/premactl -script scenarios/cordon-compensate.ctl \
		-timescale 0 -seed 7 -segment 25ms -min-npus 2 -max-npus 4 \
		-load 2 -name cordon-compensate \
		-report-json "$tmpdir/ctl-$1.json" > "$tmpdir/ctl-$1.txt"
}
replay_ctl a
replay_ctl b
cmp "$tmpdir/ctl-a.txt" "$tmpdir/ctl-b.txt"
cmp "$tmpdir/ctl-a.json" "$tmpdir/ctl-b.json"
grep -q '"source": "premactl"' "$tmpdir/ctl-a.json"
echo "smoke: cmd/premazoo"
go run ./cmd/premazoo -config >/dev/null
echo "smoke: cmd/premapredict"
go run ./cmd/premapredict -model CNN-AN >/dev/null
echo "smoke: cmd/premabench"
go run ./cmd/premabench -exp fig7 -runs 2 >/dev/null

echo "ci.sh: all green"
