package prema_test

import (
	"fmt"
	"time"

	prema "repro"
)

// The canonical usage: draw a workload, simulate it under PREMA with
// Algorithm 3 dynamic preemption, and read the paper's metrics.
func Example() {
	sys, err := prema.NewSystem()
	if err != nil {
		panic(err)
	}
	tasks, err := sys.Workload(prema.WorkloadSpec{
		Tasks: 4, Models: []string{"CNN-GN"}, BatchSizes: []int{1},
	}, 1)
	if err != nil {
		panic(err)
	}
	res, err := sys.Simulate(prema.Scheduler{
		Policy: prema.PREMA, Preemptive: true, Mechanism: prema.Dynamic,
	}, tasks)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tasks=%d ANTT>=1: %v STP<=4: %v\n",
		len(res.Tasks), res.Metrics.ANTT >= 1, res.Metrics.STP <= 4)
	// Output:
	// tasks=4 ANTT>=1: true STP<=4: true
}

// Comparing two schedulers on identical workloads: regenerate the same
// run index so the task mixes match exactly.
func ExampleSystem_Simulate() {
	sys, err := prema.NewSystem()
	if err != nil {
		panic(err)
	}
	antt := func(cfg prema.Scheduler) float64 {
		tasks, err := sys.Workload(prema.WorkloadSpec{Tasks: 8}, 3)
		if err != nil {
			panic(err)
		}
		res, err := sys.Simulate(cfg, tasks)
		if err != nil {
			panic(err)
		}
		return res.Metrics.ANTT
	}
	fcfs := antt(prema.Scheduler{Policy: prema.FCFS})
	premaANTT := antt(prema.Scheduler{
		Policy: prema.PREMA, Preemptive: true, Mechanism: prema.Dynamic,
	})
	fmt.Println("PREMA improves ANTT:", premaANTT < fcfs)
	// Output:
	// PREMA improves ANTT: true
}

// Misconfigurations fail eagerly at Validate instead of being silently
// ignored: a preemption mechanism is meaningless on a non-preemptive
// scheduler.
func ExampleScheduler_Validate() {
	bad := prema.Scheduler{Policy: prema.FCFS, Mechanism: prema.StaticKill}
	fmt.Println("rejected:", bad.Validate() != nil)
	ok := prema.Scheduler{Policy: prema.PREMA, Preemptive: true}
	fmt.Println("accepted:", ok.Validate() == nil)
	// Output:
	// rejected: true
	// accepted: true
}

// Scaling out to a multi-NPU node with the predictive least-work router.
func ExampleSystem_SimulateNode() {
	sys, err := prema.NewSystem()
	if err != nil {
		panic(err)
	}
	tasks, err := sys.Workload(prema.WorkloadSpec{Tasks: 12}, 2)
	if err != nil {
		panic(err)
	}
	res, err := sys.SimulateNode(prema.Node{
		NPUs: 4, Routing: prema.LeastWork,
		Local: prema.Scheduler{Policy: prema.PREMA, Preemptive: true},
	}, tasks)
	if err != nil {
		panic(err)
	}
	fmt.Printf("NPUs=%d completed=%d\n", len(res.PerNPU), len(res.Tasks))
	// Output:
	// NPUs=4 completed=12
}

// Streaming serving: open a Session, drive an open-loop Poisson arrival
// process at 50% utilization, and read steady-state statistics.
func ExampleSystem_Open() {
	sys, err := prema.NewSystem()
	if err != nil {
		panic(err)
	}
	sess, err := sys.Open(prema.SessionConfig{
		Scheduler: prema.Scheduler{Policy: prema.PREMA, Preemptive: true},
		Window:    time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer sess.Close()
	if _, err := sess.OfferLoad(0.5, 200*time.Millisecond); err != nil {
		panic(err)
	}
	st, err := sess.Drain()
	if err != nil {
		panic(err)
	}
	fmt.Printf("served>0: %v p99>=p50: %v\n",
		st.Requests > 0, st.P99LatencyMS >= st.P50LatencyMS)
	// Output:
	// served>0: true p99>=p50: true
}

// Custom scheduling policies register once and then work everywhere a
// builtin does.
func ExampleRegisterPolicy() {
	err := prema.RegisterPolicy("EXAMPLE-FCFS", func(prema.SchedConfig) (prema.SchedulingPolicy, error) {
		return exampleFCFS{}, nil
	})
	if err != nil {
		panic(err)
	}
	cfg := prema.Scheduler{Policy: "EXAMPLE-FCFS"}
	fmt.Println("validates:", cfg.Validate() == nil)
	// Output:
	// validates: true
}

// exampleFCFS is the minimal custom policy: first-come, first-served.
type exampleFCFS struct{}

func (exampleFCFS) Name() string        { return "EXAMPLE-FCFS" }
func (exampleFCFS) UsesPredictor() bool { return false }
func (exampleFCFS) Pick(ready []*prema.Task, current *prema.Task, now int64) prema.Decision {
	best := ready[0]
	for _, t := range ready[1:] {
		if t.Arrival < best.Arrival || (t.Arrival == best.Arrival && t.ID < best.ID) {
			best = t
		}
	}
	return prema.Decision{Candidate: best}
}
