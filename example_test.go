package prema_test

import (
	"fmt"

	prema "repro"
)

// The canonical usage: draw a workload, simulate it under PREMA with
// Algorithm 3 dynamic preemption, and read the paper's metrics.
func Example() {
	sys, err := prema.NewSystem(prema.Defaults())
	if err != nil {
		panic(err)
	}
	tasks, err := sys.Workload(prema.WorkloadSpec{Tasks: 4, Models: []string{"CNN-GN"}, BatchSizes: []int{1}}, 1)
	if err != nil {
		panic(err)
	}
	res, err := sys.Simulate(prema.Scheduler{
		Policy: "PREMA", Preemptive: true, Mechanism: "dynamic",
	}, tasks)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tasks=%d ANTT>=1: %v STP<=4: %v\n",
		len(res.Tasks), res.Metrics.ANTT >= 1, res.Metrics.STP <= 4)
	// Output:
	// tasks=4 ANTT>=1: true STP<=4: true
}

// Comparing two schedulers on identical workloads: regenerate the same
// run index so the task mixes match exactly.
func ExampleSystem_Simulate() {
	sys, err := prema.NewSystem(prema.Defaults())
	if err != nil {
		panic(err)
	}
	antt := func(cfg prema.Scheduler) float64 {
		tasks, err := sys.Workload(prema.WorkloadSpec{Tasks: 8}, 3)
		if err != nil {
			panic(err)
		}
		res, err := sys.Simulate(cfg, tasks)
		if err != nil {
			panic(err)
		}
		return res.Metrics.ANTT
	}
	fcfs := antt(prema.Scheduler{Policy: "FCFS"})
	premaANTT := antt(prema.Scheduler{Policy: "PREMA", Preemptive: true, Mechanism: "dynamic"})
	fmt.Println("PREMA improves ANTT:", premaANTT < fcfs)
	// Output:
	// PREMA improves ANTT: true
}

// Scaling out to a multi-NPU node with the predictive least-work router.
func ExampleSystem_SimulateNode() {
	sys, err := prema.NewSystem(prema.Defaults())
	if err != nil {
		panic(err)
	}
	tasks, err := sys.Workload(prema.WorkloadSpec{Tasks: 12}, 2)
	if err != nil {
		panic(err)
	}
	res, err := sys.SimulateNode(prema.Node{
		NPUs: 4, Routing: "least-work",
		Local: prema.Scheduler{Policy: "PREMA", Preemptive: true, Mechanism: "dynamic"},
	}, tasks)
	if err != nil {
		panic(err)
	}
	fmt.Printf("NPUs=%d completed=%d\n", len(res.PerNPU), len(res.Tasks))
	// Output:
	// NPUs=4 completed=12
}
